//! The rule engine: token-pattern checks for the repo's determinism and
//! panic-safety invariants, plus the `opclint: allow` waiver mechanism.
//!
//! Rules (see `DESIGN.md` §7 for the rationale):
//!
//! * `unordered-iter` — no `HashMap`/`HashSet` in non-test library code
//!   without a justified waiver, and *never* iteration over one
//!   (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for … in &map`).
//!   Iteration order is seeded per-process by `RandomState`, so any
//!   result that flows out of an unordered walk silently breaks the
//!   bit-identical-replay guarantee. Lookups are fine — hence a
//!   declaration can be waived as lookup-only — but the waiver must say
//!   why.
//! * `nondeterminism` — no ambient entropy or wall-clock in simulation
//!   paths: `thread_rng`, `from_entropy`, `SystemTime::now`,
//!   `Instant::now` are banned outside the bench crate and test code.
//!   All randomness must derive from caller seeds (`qmath::stream_seed`).
//! * `float-cmp-unwrap` — `partial_cmp(…).unwrap()` panics on the first
//!   NaN; `f64::total_cmp` is the total order to sort/max by.
//! * `panic-budget` — `unwrap()` / `expect()` / `panic!` are counted per
//!   library crate and ratcheted against `lint-baseline.txt` (the count
//!   may only shrink). Not waivable: the budget *is* the waiver.
//! * `env-read` — `std::env::var("OPC_*")` reads must live in a
//!   designated `knobs` module (one file per crate) so the determinism
//!   surface — every environment knob that can change behaviour — stays
//!   auditable in one place.
//! * `float-literal-eq` — `==`/`!=` against a float literal: exact float
//!   equality is brittle under recompilation/optimization; compare via
//!   `total_cmp`, an epsilon, or `to_bits`. Exact-sentinel comparisons
//!   (e.g. "skip the frame change when the accumulated phase is exactly
//!   the 0.0 it was initialized to") are legitimate and take a waiver.
//!
//! Waivers: `// opclint: allow(<rule>): <justification>` on the offending
//! line, or on its own line directly above. The justification is
//! mandatory; an allow without one (or for an unknown/unwaivable rule) is
//! itself a finding (`allow-syntax`).

use crate::lexer::{lex, Comment, StrLit, TokKind, Token};
use std::collections::BTreeMap;
use std::fmt;

/// Rule identifiers, in the order they are documented.
pub const RULES: [&str; 6] = [
    "unordered-iter",
    "nondeterminism",
    "float-cmp-unwrap",
    "panic-budget",
    "env-read",
    "float-literal-eq",
];

/// Rules a waiver may silence (`panic-budget` is a counted ratchet, not a
/// per-site check).
const WAIVABLE: [&str; 5] = [
    "unordered-iter",
    "nondeterminism",
    "float-cmp-unwrap",
    "env-read",
    "float-literal-eq",
];

/// Iteration-shaped methods on unordered collections.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// One violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of [`RULES`] or `allow-syntax`).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}] {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Clone, Debug, Default)]
pub struct FileCtx {
    /// Owning crate (baseline key for `panic-budget`).
    pub crate_name: String,
    /// True for the bench crate, whose whole point is wall-clock timing:
    /// `nondeterminism` does not apply there.
    pub entropy_exempt: bool,
    /// True when the entire file is test scope (under a `tests/` dir):
    /// only `panic-budget` counting is skipped *and* no rules run.
    pub is_test: bool,
}

/// Per-file lint result.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Findings, in source order.
    pub findings: Vec<Finding>,
    /// `unwrap(`/`expect(`/`panic!` sites outside test scope (input to
    /// the `panic-budget` ratchet).
    pub panic_count: usize,
}

/// A parsed `opclint: allow` directive.
#[derive(Clone, Debug)]
struct Allow {
    rule: String,
    /// Code line the directive applies to.
    target: u32,
}

/// Lints one file's source text.
pub fn lint_file(path: &str, src: &str, ctx: &FileCtx) -> FileReport {
    let lexed = lex(src);
    let mut report = FileReport::default();
    if ctx.is_test {
        return report;
    }
    let test_lines = test_line_ranges(&lexed.tokens);
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    let allows = parse_allows(path, &lexed.tokens, &lexed.comments, &mut report.findings);
    let waived = |rule: &str, line: u32| allows.iter().any(|a| a.rule == rule && a.target == line);

    let toks = &lexed.tokens;
    rule_unordered_iter(path, toks, &in_test, &waived, &mut report.findings);
    if !ctx.entropy_exempt {
        rule_nondeterminism(path, toks, &in_test, &waived, &mut report.findings);
    }
    rule_float_cmp_unwrap(path, toks, &in_test, &waived, &mut report.findings);
    rule_env_read(
        path,
        toks,
        &lexed.strings,
        &in_test,
        &waived,
        &mut report.findings,
    );
    rule_float_literal_eq(path, toks, &in_test, &waived, &mut report.findings);
    report.panic_count = count_panic_sites(toks, &in_test);
    report
}

/// Parses every `opclint: allow(<rule>): <justification>` comment,
/// reporting malformed ones, and resolves the code line each applies to.
fn parse_allows(
    path: &str,
    tokens: &[Token],
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // A directive must *start* the comment (modulo doc-comment
        // markers), so prose that merely mentions `opclint:` — e.g. this
        // sentence — never parses as one.
        let body = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(rest) = body.strip_prefix("opclint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let mut emit = |msg: String| {
            findings.push(Finding {
                rule: "allow-syntax",
                file: path.to_string(),
                line: c.line,
                message: msg,
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            emit(format!(
                "malformed opclint directive (expected `opclint: allow(<rule>): <justification>`): `{}`",
                c.text.trim()
            ));
            continue;
        };
        let Some((rule, tail)) = args.split_once(')') else {
            emit("unclosed `opclint: allow(` directive".to_string());
            continue;
        };
        let rule = rule.trim();
        if !WAIVABLE.contains(&rule) {
            emit(format!(
                "`{rule}` is not a waivable rule (waivable: {})",
                WAIVABLE.join(", ")
            ));
            continue;
        }
        let justification = tail.trim_start().strip_prefix(':').unwrap_or("").trim();
        if justification.len() < 3 {
            emit(format!(
                "allow({rule}) requires a justification: `// opclint: allow({rule}): <why this is safe>`"
            ));
            continue;
        }
        // A trailing comment waives its own line; an own-line comment
        // waives the next code line (stacked directives all bind to it).
        let target = if c.trailing {
            c.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line + 1)
        };
        allows.push(Allow {
            rule: rule.to_string(),
            target,
        });
    }
    allows
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items. Ranges are
/// found by brace-matching from the token after the attribute.
fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr: Vec<&Token> = Vec::new();
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            attr.push(&tokens[j]);
            j += 1;
        }
        let is_test_attr = match attr.first() {
            // `cfg(test)` and friends — but not `cfg(not(test))`, which
            // marks code that is *absent* from test builds.
            Some(t) if t.is_ident("cfg") => {
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"))
            }
            Some(t) if t.is_ident("test") && attr.len() == 1 => true,
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes, then brace-match the item body
        // (or stop at `;` for bodiless items).
        let mut k = j + 1;
        while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
            let mut d = 1usize;
            k += 2;
            while k < tokens.len() && d > 0 {
                if tokens[k].is_punct('[') {
                    d += 1;
                } else if tokens[k].is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        let mut brace = 0usize;
        let mut end_line = start_line;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace = brace.saturating_sub(1);
                if brace == 0 {
                    end_line = t.line;
                    break;
                }
            } else if t.is_punct(';') && brace == 0 {
                end_line = t.line;
                break;
            }
            end_line = t.line;
            k += 1;
        }
        ranges.push((start_line, end_line));
        i = k + 1;
    }
    ranges
}

/// Rule 1: unordered collections.
fn rule_unordered_iter(
    path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    waived: &dyn Fn(&str, u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    // Pass 1: every HashMap/HashSet token outside a `use` declaration is
    // a declaration/constructor site needing a waiver; bindings get their
    // names tracked so pass 2 can catch iteration.
    let mut tracked: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        if in_statement_headed_by(tokens, i, "use") {
            continue;
        }
        if let Some(name) = bound_name(tokens, i) {
            if !tracked.contains(&name) {
                tracked.push(name);
            }
        }
        if in_test(t.line) || waived("unordered-iter", t.line) {
            continue;
        }
        findings.push(Finding {
            rule: "unordered-iter",
            file: path.to_string(),
            line: t.line,
            message: format!(
                "`{}` in library code: iteration order is nondeterministic — use \
                 `BTreeMap`/`BTreeSet` (or sort explicitly), or waive with \
                 `// opclint: allow(unordered-iter): <lookup-only justification>`",
                t.text
            ),
        });
    }

    // Pass 2: iteration over a tracked binding.
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !tracked.contains(&t.text) {
            continue;
        }
        if in_test(t.line) {
            continue;
        }
        // `name.iter()` / `name.drain(..)` / …
        let method_iterates = tokens.get(i + 1).is_some_and(|d| d.is_punct('.'))
            && tokens
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.iter().any(|im| m.is_ident(im)))
            && tokens.get(i + 3).is_some_and(|p| p.is_punct('('));
        // `for x in &name {`, `for x in name {`, `for x in &self.name {`
        let for_iterates = {
            let mut j = i;
            loop {
                if j > 0 && (tokens[j - 1].is_punct('&') || tokens[j - 1].is_ident("mut")) {
                    j -= 1;
                } else if j >= 2
                    && tokens[j - 1].is_punct('.')
                    && tokens[j - 2].kind == TokKind::Ident
                {
                    j -= 2;
                } else {
                    break;
                }
            }
            j > 0
                && tokens[j - 1].is_ident("in")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('{'))
        };
        if !(method_iterates || for_iterates) {
            continue;
        }
        if waived("unordered-iter", t.line) {
            continue;
        }
        findings.push(Finding {
            rule: "unordered-iter",
            file: path.to_string(),
            line: t.line,
            message: format!(
                "iteration over unordered collection `{}`: order varies per process — \
                 iterate a `BTreeMap`/`BTreeSet` or collect-and-sort first",
                t.text
            ),
        });
    }
}

/// True when the statement containing token `i` starts with keyword `kw`
/// (scanning back to the previous `;`, `{` or `}`).
fn in_statement_headed_by(tokens: &[Token], i: usize, kw: &str) -> bool {
    let mut j = i;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.is_punct(';') || t.is_punct('}') {
            break;
        }
        if t.is_punct('{') {
            // A use-group brace (`use a::{B, C}`) follows `::` and is
            // transparent; any other brace ends the statement scan.
            if j >= 3 && tokens[j - 2].is_punct(':') && tokens[j - 3].is_punct(':') {
                j -= 1;
                continue;
            }
            break;
        }
        j -= 1;
    }
    tokens.get(j).is_some_and(|t| t.is_ident(kw))
}

/// The binding name a `HashMap`/`HashSet` token at `i` declares, if the
/// local pattern is recognizable: `name: [std::collections::]HashMap<…>`
/// (field or annotated let) or `[let [mut]] name = HashMap::new()`.
fn bound_name(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    // Step over a `std::collections::` (or any) path prefix.
    while j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
        j -= 2;
        if j > 0 && tokens[j - 1].kind == TokKind::Ident {
            j -= 1;
        }
    }
    if j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].kind == TokKind::Ident {
        return Some(tokens[j - 2].text.clone());
    }
    if j >= 2 && tokens[j - 1].is_punct('=') && tokens[j - 2].kind == TokKind::Ident {
        return Some(tokens[j - 2].text.clone());
    }
    None
}

/// Rule 2: ambient entropy / wall-clock.
fn rule_nondeterminism(
    path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    waived: &dyn Fn(&str, u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        let (what, fix) = if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            (
                t.text.clone(),
                "derive randomness from a caller seed via `qmath::seeded`/`qmath::stream_seed`",
            )
        } else if (t.is_ident("SystemTime") || t.is_ident("Instant"))
            && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            (
                format!("{}::now", t.text),
                "wall-clock reads belong in the bench crate; simulation results must be a pure function of seeds",
            )
        } else {
            continue;
        };
        if in_test(t.line) || waived("nondeterminism", t.line) {
            continue;
        }
        findings.push(Finding {
            rule: "nondeterminism",
            file: path.to_string(),
            line: t.line,
            message: format!("`{what}` in a simulation path: {fix}"),
        });
    }
}

/// Rule 3: NaN-panicking float comparisons.
fn rule_float_cmp_unwrap(
    path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    waived: &dyn Fn(&str, u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("partial_cmp") {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|p| p.is_punct('(')) {
            continue;
        }
        // Skip the balanced argument list.
        let mut depth = 1usize;
        let mut j = i + 2;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
            }
            j += 1;
        }
        let chained_panic = tokens.get(j).is_some_and(|d| d.is_punct('.'))
            && tokens
                .get(j + 1)
                .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"));
        if !chained_panic || in_test(t.line) || waived("float-cmp-unwrap", t.line) {
            continue;
        }
        findings.push(Finding {
            rule: "float-cmp-unwrap",
            file: path.to_string(),
            line: t.line,
            message: "`partial_cmp(…).unwrap()` panics on NaN — use `f64::total_cmp` \
                      (a total order) instead"
                .to_string(),
        });
    }
}

/// Rule 5: environment knobs outside the designated config module.
///
/// Matches `env :: var(…)` / `env :: var_os(…)` whose first string
/// argument starts with `OPC_`. Files named `knobs.rs` are the designated
/// per-crate home for these reads and are exempt.
fn rule_env_read(
    path: &str,
    tokens: &[Token],
    strings: &[StrLit],
    in_test: &dyn Fn(u32) -> bool,
    waived: &dyn Fn(&str, u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    let stem = path
        .rsplit(['/', '\\'])
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs");
    if stem == "knobs" {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("env") {
            continue;
        }
        let is_var_call = tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && tokens
                .get(i + 3)
                .is_some_and(|m| m.is_ident("var") || m.is_ident("var_os"))
            && tokens.get(i + 4).is_some_and(|p| p.is_punct('('));
        if !is_var_call {
            continue;
        }
        // The argument string starts on the call's line or the next one
        // (rustfmt may wrap); the first literal at or after the call is it.
        let name = strings
            .iter()
            .find(|s| s.line >= t.line && s.line <= t.line + 1)
            .map(|s| s.text.as_str());
        let Some(name) = name.filter(|n| n.starts_with("OPC_")) else {
            continue;
        };
        if in_test(t.line) || waived("env-read", t.line) {
            continue;
        }
        findings.push(Finding {
            rule: "env-read",
            file: path.to_string(),
            line: t.line,
            message: format!(
                "`env::var(\"{name}\")` outside a `knobs` module: move the read into the \
                 crate's `knobs.rs` (the audited determinism surface) or waive with \
                 `// opclint: allow(env-read): <why this read cannot live there>`"
            ),
        });
    }
}

/// True when a numeric literal's spelling is a float (`1.0`, `2.5e3`,
/// `1f64`), not an integer or a non-decimal literal.
fn is_float_literal(text: &str) -> bool {
    if text.is_empty()
        || text.starts_with("0x")
        || text.starts_with("0X")
        || text.starts_with("0o")
        || text.starts_with("0b")
    {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        // The lexer splits `1e-3` at the sign, leaving a trailing `e`.
        || text.ends_with('e')
        || text.ends_with('E')
}

/// Rule 6: exact equality against a float literal.
fn rule_float_literal_eq(
    path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    waived: &dyn Fn(&str, u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..tokens.len() {
        // `==` is Punct('=') Punct('='); `!=` is Punct('!') Punct('=').
        // Compound operators (`<=`, `>>=`, `..=`, `=>`) never produce
        // either adjacency, so no look-behind is needed.
        let second_eq = tokens.get(i + 1).is_some_and(|t| t.is_punct('='));
        let op = if tokens[i].is_punct('=') && second_eq {
            "=="
        } else if tokens[i].is_punct('!') && second_eq {
            "!="
        } else {
            continue;
        };
        let float_operand = |t: Option<&Token>| {
            t.is_some_and(|t| t.kind == TokKind::Number && is_float_literal(&t.text))
        };
        let lhs = i.checked_sub(1).and_then(|j| tokens.get(j));
        let rhs = tokens.get(i + 2);
        if !(float_operand(lhs) || float_operand(rhs)) {
            continue;
        }
        let line = tokens[i].line;
        if in_test(line) || waived("float-literal-eq", line) {
            continue;
        }
        findings.push(Finding {
            rule: "float-literal-eq",
            file: path.to_string(),
            line,
            message: format!(
                "`{op}` against a float literal: exact float equality is brittle — compare \
                 via `total_cmp`/`to_bits` or an epsilon, or waive an exact-sentinel check \
                 with `// opclint: allow(float-literal-eq): <why exactness is intended>`"
            ),
        });
    }
}

/// `unwrap(` / `expect(` / `panic!` sites outside test scope.
fn count_panic_sites(tokens: &[Token], in_test: &dyn Fn(u32) -> bool) -> usize {
    let mut count = 0;
    for (i, t) in tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let call = tokens.get(i + 1).is_some_and(|p| p.is_punct('('));
        if ((t.is_ident("unwrap") || t.is_ident("expect")) && call)
            || (t.is_ident("panic") && tokens.get(i + 1).is_some_and(|p| p.is_punct('!')))
        {
            count += 1;
        }
    }
    count
}

/// Aggregates per-crate panic counts from file reports.
pub fn panic_counts<'a>(
    reports: impl IntoIterator<Item = (&'a FileCtx, &'a FileReport)>,
) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for (ctx, report) in reports {
        *counts.entry(ctx.crate_name.clone()).or_insert(0) += report.panic_count;
    }
    counts
}
