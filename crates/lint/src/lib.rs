//! `opclint` — workspace-wide determinism & panic-safety static analysis.
//!
//! The repo's headline reproduction guarantee is *bit-identical results
//! at any `OPC_THREADS`, with every cache on or off*. PRs 1–3 enforce
//! that dynamically with determinism tests; this crate enforces it
//! statically, so a stray `HashMap` iteration or `thread_rng()` in an
//! untested path cannot reach `main` at all. It is deliberately
//! self-contained (own lexer, no dependencies — the build environment is
//! offline) and fast enough to run on every push.
//!
//! Layers:
//!
//! * [`lexer`] — a comment/string/raw-string-aware Rust token scanner, so
//!   rule patterns never fire inside literals or comments.
//! * [`rules`] — the rule engine: `unordered-iter`, `nondeterminism`,
//!   `float-cmp-unwrap`, `panic-budget`, plus `opclint: allow` waivers.
//! * [`baseline`] — the committed, shrink-only panic-budget ratchet.
//! * [`walk`] — workspace discovery (which files, which rule context).
//!
//! Run `cargo run -p opclint` for a report, `-- --check` for the CI gate
//! (nonzero exit on any finding), `-- --update-baseline` to tighten the
//! ratchet after removing panic paths.

#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use baseline::BASELINE_FILE;
pub use lexer::{lex, Lexed, TokKind, Token};
pub use rules::{lint_file, FileCtx, FileReport, Finding, RULES};
pub use walk::{collect_sources, find_workspace_root, SourceFile};

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Result of linting a whole workspace.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceReport {
    /// All rule findings (without the baseline comparison).
    pub findings: Vec<Finding>,
    /// Per-crate panic-site counts (input to the ratchet).
    pub panic_counts: BTreeMap<String, usize>,
    /// Number of files scanned.
    pub files: usize,
}

/// Lints every library source file of the workspace rooted at `root`.
/// The baseline comparison is left to the caller (check vs update).
pub fn lint_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let sources = collect_sources(root)?;
    let mut report = WorkspaceReport {
        files: sources.len(),
        ..WorkspaceReport::default()
    };
    for s in &sources {
        let text = fs::read_to_string(&s.path)
            .map_err(|e| format!("cannot read {}: {e}", s.path.display()))?;
        let file_report = lint_file(&s.rel, &text, &s.ctx);
        report.findings.extend(file_report.findings);
        *report
            .panic_counts
            .entry(s.ctx.crate_name.clone())
            .or_insert(0) += file_report.panic_count;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}
