//! The panic-budget baseline: a committed per-crate count of
//! `unwrap()`/`expect()`/`panic!` sites that may only shrink.
//!
//! The ratchet direction is asymmetric by design: a count *above* the
//! committed baseline is an error (new panic paths snuck in), a count
//! *below* it is a note (the file should be tightened with
//! `--update-baseline`, but a merge race between two panic-removing PRs
//! must not turn CI red).

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// File name of the committed baseline, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Parses the committed baseline (`<crate> <count>` lines, `#` comments).
/// Unparseable lines are reported rather than ignored, so a corrupted
/// baseline cannot silently disable the ratchet.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut counts = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (name, count) = (parts.next(), parts.next());
        match (
            name,
            count.and_then(|c| c.parse::<usize>().ok()),
            parts.next(),
        ) {
            (Some(name), Some(count), None) => {
                counts.insert(name.to_string(), count);
            }
            _ => {
                return Err(format!(
                    "{BASELINE_FILE}:{}: expected `<crate> <count>`, got `{line}`",
                    lineno + 1
                ));
            }
        }
    }
    Ok(counts)
}

/// Renders a baseline file for the given counts.
pub fn render(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# opclint panic-budget baseline: unwrap()/expect()/panic! sites per crate\n\
         # (non-test code). The ratchet only goes down — fix panics, then run\n\
         #   cargo run -p opclint -- --update-baseline\n\
         # to record the smaller count. Increases fail CI.\n",
    );
    for (name, count) in counts {
        let _ = writeln!(out, "{name} {count}");
    }
    out
}

/// Compares current per-crate counts against the baseline. Returns
/// ratchet violations as findings and tightening opportunities /
/// stale entries as notes.
pub fn compare(
    baseline: &BTreeMap<String, usize>,
    current: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut notes = Vec::new();
    for (name, &count) in current {
        match baseline.get(name) {
            None => findings.push(Finding {
                rule: "panic-budget",
                file: BASELINE_FILE.to_string(),
                line: 0,
                message: format!(
                    "crate `{name}` ({count} panic sites) is missing from the baseline — \
                     run `cargo run -p opclint -- --update-baseline` and commit it"
                ),
            }),
            Some(&budget) if count > budget => findings.push(Finding {
                rule: "panic-budget",
                file: BASELINE_FILE.to_string(),
                line: 0,
                message: format!(
                    "crate `{name}` has {count} unwrap()/expect()/panic! sites, over its \
                     budget of {budget} — remove the new panic path (return a Result) \
                     instead of raising the budget"
                ),
            }),
            Some(&budget) if count < budget => notes.push(format!(
                "crate `{name}` is under budget ({count} < {budget}) — tighten the \
                 ratchet with `cargo run -p opclint -- --update-baseline`"
            )),
            Some(_) => {}
        }
    }
    for name in baseline.keys() {
        if !current.contains_key(name) {
            notes.push(format!(
                "baseline entry `{name}` matches no workspace crate — stale? \
                 refresh with `--update-baseline`"
            ));
        }
    }
    (findings, notes)
}
