//! A minimal, purpose-built Rust lexer.
//!
//! `opclint`'s rules are token-pattern matches (`Ident("thread_rng")`,
//! `Ident("partial_cmp") '(' … ')' '.' Ident("unwrap")`), so the lexer's
//! only job is to produce the identifier/punctuation stream with **no
//! false tokens from inside literals**: a `"thread_rng"` string, a
//! `// HashMap.iter()` comment or an `r#"…panic!…"#` raw string must not
//! look like code. It therefore handles, precisely:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments,
//! * string literals with escapes, byte strings, C strings,
//! * raw (byte/C) strings with any number of `#` guards,
//! * char and byte-char literals (including `'\''` and `'\u{…}'`),
//! * the lifetime-vs-char-literal ambiguity (`'a>` vs `'a'`),
//! * raw identifiers (`r#type`).
//!
//! Comments are not discarded: they come back in a side channel so the
//! rule engine can parse `// opclint: allow(<rule>): <justification>`
//! waiver directives and attach them to the right code line. String
//! literal *bodies* come back in a second side channel (never as code
//! tokens) so dataflow rules like `env-read` can see which variable name
//! a call reads.
//!
//! Numbers keep their spelling (so `float-literal-eq` can tell `1.0`
//! from `1`); punctuation is tokenized one character at a time and the
//! rules match on adjacency.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// Numeric literal; `text` carries the spelling so `float-literal-eq`
    /// can tell floats from integers.
    Number,
    /// One punctuation character.
    Punct(char),
    /// A lifetime such as `'a` (kept distinct so `'a` never reads as the
    /// start of a char literal).
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind of token.
    pub kind: TokKind,
    /// Source text (identifier name; empty for punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One string literal, preserved for dataflow rules (`env-read` needs to
/// see which variable name a `std::env::var` call reads).
#[derive(Clone, Debug)]
pub struct StrLit {
    /// 1-based line the literal starts on.
    pub line: u32,
    /// Literal body, escapes left as written, without quotes/guards.
    pub text: String,
}

/// One comment, preserved for waiver-directive parsing.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when code tokens precede the comment on its line (a trailing
    /// comment annotates its own line; an own-line comment annotates the
    /// next code line).
    pub trailing: bool,
    /// Comment body, without the `//`/`/*` markers.
    pub text: String,
}

/// Lexer output: the code-token stream plus the comment side channel.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// String-literal bodies in source order (plain, raw, byte, C).
    pub strings: Vec<StrLit>,
}

/// Lexes `src`. Malformed input (unterminated literals) does not panic:
/// the lexer consumes to end-of-file, which is the safe direction for a
/// lint (an unterminated literal hides patterns instead of inventing
/// them, and rustc will reject the file anyway).
pub fn lex(src: &str) -> Lexed {
    Scanner::new(src).run()
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Line of the most recent code token (for `Comment::trailing`).
    last_token_line: u32,
    out: Lexed,
}

impl Scanner {
    fn new(src: &str) -> Self {
        Scanner {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            last_token_line: 0,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.last_token_line = line;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_body(line);
                }
                '\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(),
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), String::new(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            trailing,
            text,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            trailing,
            text,
        });
    }

    /// Body of a non-raw string, after the opening `"`; records the body
    /// in the string side channel. `line` is the opening quote's line.
    fn string_body(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Any escape: consume the next char blindly (covers
                    // \" \\ \n \u{…} well enough — braces are plain
                    // chars and cannot contain an unescaped quote).
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.out.strings.push(StrLit { line, text });
    }

    /// Body of a raw string, after `r#…#"`: ends at `"` followed by
    /// `hashes` `#` characters. Records the body like [`Self::string_body`].
    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.out.strings.push(StrLit { line, text });
                    return;
                }
            }
            text.push(c);
        }
        self.out.strings.push(StrLit { line, text });
    }

    /// A `'`: lifetime or char literal. A lifetime is `'` followed by an
    /// identifier that is *not* closed by another `'` (so `'a'` is a char
    /// but `'a,` and `'static>` are lifetimes).
    fn quote(&mut self) {
        let line = self.line;
        self.bump();
        let starts_ident = self
            .peek(0)
            .map(|c| c == '_' || c.is_alphabetic())
            .unwrap_or(false);
        if starts_ident && self.peek(1) != Some('\'') {
            let mut name = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line);
            return;
        }
        // Char literal: consume up to the closing quote, honoring escapes.
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => return,
                _ => {}
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                // Float like `1.25`; `0..n` and `1.0.to_bits()` stop here.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Number, text, line);
    }

    /// An identifier — unless it turns out to be the prefix of a (raw)
    /// string/char literal (`r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`,
    /// `c"…"`, `b'x'`) or a raw identifier (`r#ident`).
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let raw_capable = matches!(name.as_str(), "r" | "br" | "cr");
        let plain_string_prefix = matches!(name.as_str(), "b" | "c" | "r" | "br" | "cr");
        match self.peek(0) {
            Some('"') if plain_string_prefix => {
                self.bump();
                if raw_capable {
                    self.raw_string_body(0, line);
                } else {
                    self.string_body(line);
                }
            }
            Some('#') if raw_capable => {
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes, line);
                } else if name == "r" {
                    // Raw identifier `r#type`: skip the `#`, lex the
                    // identifier proper.
                    self.bump();
                    let mut raw = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            raw.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident, raw, line);
                } else {
                    self.push(TokKind::Ident, name, line);
                }
            }
            Some('\'') if name == "b" => {
                // Byte-char literal b'x'.
                self.bump();
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
            }
            _ => self.push(TokKind::Ident, name, line),
        }
    }
}
