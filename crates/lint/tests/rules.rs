//! Rule-engine tests over the committed fixtures plus targeted snippets:
//! known-bad code is flagged with the right rule at the right line,
//! waived code passes, literals never fire, and the baseline ratchet
//! rejects growth.

use opclint::rules::{lint_file, FileCtx, FileReport};
use opclint::{baseline, Finding};
use std::collections::BTreeMap;
use std::path::Path;

fn lint_fixture(name: &str) -> FileReport {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    lint_file(name, &src, &lib_ctx())
}

fn lib_ctx() -> FileCtx {
    FileCtx {
        crate_name: "fixture".to_string(),
        entropy_exempt: false,
        is_test: false,
    }
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unordered_iter_fixture_flags_decls_and_iteration() {
    let report = lint_fixture("bad_unordered_iter.rs");
    let rules = rules_of(&report.findings);
    assert!(
        rules.iter().all(|&r| r == "unordered-iter"),
        "unexpected rules: {:?}",
        report.findings
    );
    // Two declarations (field + let), .keys(), for-loop, .drain().
    assert_eq!(rules.len(), 5, "{:#?}", report.findings);
    let lines: Vec<u32> = report.findings.iter().map(|f| f.line).collect();
    assert!(lines.contains(&7), "field decl line: {lines:?}");
    assert!(lines.contains(&12), ".keys() line: {lines:?}");
    assert!(lines.contains(&17), "for-loop line: {lines:?}");
    assert!(lines.contains(&26), ".drain() line: {lines:?}");
}

#[test]
fn nondeterminism_fixture_flags_every_source() {
    let report = lint_fixture("bad_nondeterminism.rs");
    let rules = rules_of(&report.findings);
    assert_eq!(rules, vec!["nondeterminism"; 4], "{:#?}", report.findings);
    let msgs: String = report
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for what in [
        "thread_rng",
        "from_entropy",
        "SystemTime::now",
        "Instant::now",
    ] {
        assert!(msgs.contains(what), "missing {what} in: {msgs}");
    }
}

#[test]
fn nondeterminism_is_waived_for_the_bench_crate() {
    let src = "pub fn t() -> std::time::Instant { std::time::Instant::now() }";
    let bench = FileCtx {
        crate_name: "repro-bench".to_string(),
        entropy_exempt: true,
        is_test: false,
    };
    assert!(lint_file("timing.rs", src, &bench).findings.is_empty());
    assert_eq!(lint_file("timing.rs", src, &lib_ctx()).findings.len(), 1);
}

#[test]
fn float_cmp_fixture_flags_unwrap_and_expect_but_not_unwrap_or() {
    let report = lint_fixture("bad_float_cmp.rs");
    assert_eq!(
        rules_of(&report.findings),
        vec!["float-cmp-unwrap"; 2],
        "{:#?}",
        report.findings
    );
    let lines: Vec<u32> = report.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![7, 13]);
    // unwrap() + expect() count toward the panic budget; unwrap_or() not.
    assert_eq!(report.panic_count, 2);
}

#[test]
fn env_read_fixture_flags_opc_reads_outside_knobs() {
    let report = lint_fixture("bad_env_read.rs");
    assert_eq!(
        rules_of(&report.findings),
        vec!["env-read"; 3],
        "{:#?}",
        report.findings
    );
    let lines: Vec<u32> = report.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![5, 10, 15], "{:#?}", report.findings);
    let msgs: String = report
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for knob in ["OPC_FUSION", "OPC_CAL_CACHE", "OPC_THREADS"] {
        assert!(msgs.contains(knob), "missing {knob} in: {msgs}");
    }
}

#[test]
fn env_reads_in_a_knobs_module_are_the_designated_home() {
    let src = r#"pub fn f() -> bool { std::env::var("OPC_FUSION").is_ok() }"#;
    assert!(lint_file("crates/device/src/knobs.rs", src, &lib_ctx())
        .findings
        .is_empty());
    assert_eq!(
        lint_file("crates/device/src/other.rs", src, &lib_ctx())
            .findings
            .len(),
        1
    );
}

#[test]
fn float_literal_eq_fixture_flags_exact_comparisons_only() {
    let report = lint_fixture("bad_float_literal_eq.rs");
    assert_eq!(
        rules_of(&report.findings),
        vec!["float-literal-eq"; 4],
        "{:#?}",
        report.findings
    );
    let lines: Vec<u32> = report.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![5, 10, 15, 20], "{:#?}", report.findings);
}

#[test]
fn justified_allows_waive_cleanly() {
    let report = lint_fixture("allowed_ok.rs");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn unjustified_or_unwaivable_allows_are_findings_and_do_not_waive() {
    let report = lint_fixture("bad_allow.rs");
    let mut rules = rules_of(&report.findings);
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec![
            "allow-syntax",
            "allow-syntax",
            "float-cmp-unwrap",
            "unordered-iter"
        ],
        "{:#?}",
        report.findings
    );
}

#[test]
fn literals_comments_and_test_modules_never_fire() {
    let report = lint_fixture("clean_literals.rs");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.panic_count, 0);
}

#[test]
fn test_files_are_fully_exempt() {
    let mut ctx = lib_ctx();
    ctx.is_test = true;
    let src = "pub fn f() { rand::thread_rng(); }";
    assert!(lint_file("tests/x.rs", src, &ctx).findings.is_empty());
}

#[test]
fn cfg_test_module_boundaries_are_token_precise() {
    // Same banned call before, inside, and after the test module: the
    // inside one is exempt, the outer two are not.
    let src = "\
pub fn before() { rand::thread_rng(); }
#[cfg(test)]
mod tests {
    fn inside() { rand::thread_rng(); }
}
pub fn after() { rand::thread_rng(); }
";
    let report = lint_file("lib.rs", src, &lib_ctx());
    let lines: Vec<u32> = report.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![1, 6], "{:#?}", report.findings);
}

#[test]
fn cfg_not_test_is_not_exempt() {
    let src = "#[cfg(not(test))]\npub fn f() { rand::thread_rng(); }";
    assert_eq!(lint_file("lib.rs", src, &lib_ctx()).findings.len(), 1);
}

#[test]
fn multi_line_block_comment_waivers_bind_to_the_next_code_line() {
    let src = "\
pub fn f(x: f64) -> bool {
    /* opclint: allow(float-literal-eq): exact sentinel -- zero is the
       initialized accumulator value, never a computed result */
    x == 0.0
}
";
    let report = lint_file("lib.rs", src, &lib_ctx());
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn prose_mentioning_opclint_in_a_block_comment_is_not_a_directive() {
    let src = "/* see the opclint: allow(...) docs */\npub fn f(x: f64) -> bool { x == 0.0 }";
    let report = lint_file("lib.rs", src, &lib_ctx());
    assert_eq!(
        rules_of(&report.findings),
        vec!["float-literal-eq"],
        "{:#?}",
        report.findings
    );
}

#[test]
fn crlf_line_endings_keep_line_numbers_and_waivers_accurate() {
    // Unwaived: the finding lands on the CRLF-terminated line 2.
    let bad = "pub fn f(x: f64) -> bool {\r\n    x == 0.0\r\n}\r\n";
    let report = lint_file("lib.rs", bad, &lib_ctx());
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].line, 2);

    // A trailing waiver's justification must survive the stray `\r`.
    let trailing =
        "pub fn f(x: f64) -> bool {\r\n    x == 0.0 // opclint: allow(float-literal-eq): exact sentinel\r\n}\r\n";
    assert!(lint_file("lib.rs", trailing, &lib_ctx())
        .findings
        .is_empty());

    // And an own-line waiver still binds to the next code line.
    let own_line =
        "pub fn f(x: f64) -> bool {\r\n    // opclint: allow(float-literal-eq): exact sentinel\r\n    x == 0.0\r\n}\r\n";
    assert!(lint_file("lib.rs", own_line, &lib_ctx())
        .findings
        .is_empty());
}

#[test]
fn waiver_on_the_last_line_without_a_newline_still_applies() {
    let src =
        "pub fn f(x: f64) -> bool { x == 0.0 } // opclint: allow(float-literal-eq): exact sentinel";
    let report = lint_file("lib.rs", src, &lib_ctx());
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn unjustified_waivers_are_flagged_even_inside_test_modules() {
    // Rule findings are exempt inside `#[cfg(test)]`, but a malformed
    // directive is a lint-hygiene problem wherever it sits.
    let src = "\
#[cfg(test)]
mod tests {
    // opclint: allow(float-literal-eq)
    fn helper(x: f64) -> bool { x == 0.0 }
}
";
    let report = lint_file("lib.rs", src, &lib_ctx());
    assert_eq!(
        rules_of(&report.findings),
        vec!["allow-syntax"],
        "{:#?}",
        report.findings
    );
    assert_eq!(report.findings[0].line, 3);
}

#[test]
fn baseline_round_trips() {
    let mut counts = BTreeMap::new();
    counts.insert("quant-device".to_string(), 19);
    counts.insert("quant-math".to_string(), 1);
    let parsed = baseline::parse(&baseline::render(&counts)).unwrap();
    assert_eq!(parsed, counts);
}

#[test]
fn baseline_rejects_garbage() {
    assert!(baseline::parse("quant-device nineteen").is_err());
    assert!(baseline::parse("quant-device 1 2").is_err());
}

#[test]
fn ratchet_rejects_growth_tolerates_equality_notes_shrink() {
    let committed: BTreeMap<String, usize> = [("a".to_string(), 3), ("b".to_string(), 5)]
        .into_iter()
        .collect();

    let grown: BTreeMap<String, usize> = [("a".to_string(), 4), ("b".to_string(), 5)]
        .into_iter()
        .collect();
    let (violations, notes) = baseline::compare(&committed, &grown);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].message.contains('a'), "{}", violations[0]);
    assert!(notes.is_empty());

    let equal = committed.clone();
    let (violations, notes) = baseline::compare(&committed, &equal);
    assert!(violations.is_empty() && notes.is_empty());

    let shrunk: BTreeMap<String, usize> = [("a".to_string(), 2), ("b".to_string(), 5)]
        .into_iter()
        .collect();
    let (violations, notes) = baseline::compare(&committed, &shrunk);
    assert!(violations.is_empty());
    assert_eq!(notes.len(), 1);
}

#[test]
fn ratchet_requires_new_crates_in_the_baseline() {
    let committed: BTreeMap<String, usize> = [("a".to_string(), 3)].into_iter().collect();
    let with_new: BTreeMap<String, usize> = [("a".to_string(), 3), ("newcrate".to_string(), 2)]
        .into_iter()
        .collect();
    let (violations, _) = baseline::compare(&committed, &with_new);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].message.contains("newcrate"));

    // And flags stale entries the other way (as a note, not an error).
    let (violations, notes) = baseline::compare(&with_new, &committed);
    assert!(violations.is_empty());
    assert_eq!(notes.len(), 1);
    assert!(notes[0].contains("newcrate"));
}
