//! End-to-end CLI tests: `opclint --check` must exit nonzero on each bad
//! fixture, naming the rule and file:line, and exit zero on waived code.

use std::path::Path;
use std::process::Command;

fn run_check(fixtures: &[&str]) -> (bool, String) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_opclint"));
    cmd.arg("--check");
    for f in fixtures {
        cmd.arg(dir.join(f));
    }
    let out = cmd.output().expect("spawn opclint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.success(), stdout)
}

#[test]
fn check_fails_on_each_bad_fixture_naming_rule_and_location() {
    for (fixture, rule, line) in [
        ("bad_unordered_iter.rs", "unordered-iter", 7),
        ("bad_nondeterminism.rs", "nondeterminism", 5),
        ("bad_float_cmp.rs", "float-cmp-unwrap", 7),
        ("bad_allow.rs", "allow-syntax", 8),
        ("bad_env_read.rs", "env-read", 5),
        ("bad_float_literal_eq.rs", "float-literal-eq", 5),
    ] {
        let (ok, stdout) = run_check(&[fixture]);
        assert!(!ok, "{fixture} should fail --check:\n{stdout}");
        assert!(
            stdout.contains(&format!("error[{rule}]")),
            "{fixture} must name rule {rule}:\n{stdout}"
        );
        assert!(
            stdout.contains(&format!("{fixture}:{line}:")),
            "{fixture} must point at line {line}:\n{stdout}"
        );
    }
}

#[test]
fn check_passes_on_waived_and_literal_fixtures() {
    for fixture in ["allowed_ok.rs", "clean_literals.rs"] {
        let (ok, stdout) = run_check(&[fixture]);
        assert!(ok, "{fixture} should pass --check:\n{stdout}");
        assert!(stdout.contains("0 finding(s)"), "{stdout}");
    }
}

#[test]
fn list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_opclint"))
        .arg("--list-rules")
        .output()
        .expect("spawn opclint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "unordered-iter",
        "nondeterminism",
        "float-cmp-unwrap",
        "panic-budget",
        "env-read",
        "float-literal-eq",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in: {stdout}");
    }
}

#[test]
fn json_mode_emits_machine_readable_findings() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let out = Command::new(env!("CARGO_BIN_EXE_opclint"))
        .arg("--check")
        .arg("--json")
        .arg(dir.join("bad_float_literal_eq.rs"))
        .output()
        .expect("spawn opclint");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One object, no human-format lines.
    assert!(
        stdout.trim().starts_with('{') && stdout.trim().ends_with('}'),
        "{stdout}"
    );
    assert!(!stdout.contains("error["), "{stdout}");
    assert!(stdout.contains(r#""rule":"float-literal-eq""#), "{stdout}");
    assert!(stdout.contains(r#""line":5"#), "{stdout}");
    assert!(stdout.contains(r#""files":1"#), "{stdout}");

    // Clean input: empty findings array, still one object, exit 0.
    let out = Command::new(env!("CARGO_BIN_EXE_opclint"))
        .arg("--check")
        .arg("--json")
        .arg(dir.join("allowed_ok.rs"))
        .output()
        .expect("spawn opclint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(r#""findings":[]"#), "{stdout}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_opclint"))
        .arg("--frobnicate")
        .output()
        .expect("spawn opclint");
    assert_eq!(out.status.code(), Some(2));
}
