//! Fixture: NaN-panicking float comparisons.
//! Both chains below must be flagged `float-cmp-unwrap`.

pub fn max_index(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

pub fn sorted(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sort key"));
    xs
}

/// A bare `partial_cmp` that handles `None` is fine.
pub fn safe(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}
