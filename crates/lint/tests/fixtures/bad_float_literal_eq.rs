//! Fixture: exact equality against float literals.

/// Flagged: `==` with the literal on the right.
pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

/// Flagged: `!=` with the literal on the left.
pub fn nonzero(y: f64) -> bool {
    0.0 != y
}

/// Flagged: suffixed literal without a dot.
pub fn is_two(x: f64) -> bool {
    x == 2f64
}

/// Flagged: scientific notation (the lexer splits `1e-3` at the sign).
pub fn is_milli(x: f64) -> bool {
    x == 1e-3
}

/// Not flagged: integer equality is exact by construction.
pub fn is_five(n: u32) -> bool {
    n == 5
}

/// Not flagged: ordering comparisons and inclusive ranges — `<=`, `>=`
/// and `..=` never form the `==`/`!=` token adjacency.
pub fn clamped(x: f64) -> bool {
    (0.0..=1.0).contains(&x) && x <= 1.0 && x >= 0.0
}

/// Not flagged: waived exact-sentinel check.
pub fn skip_zero(sigma: f64) -> bool {
    // opclint: allow(float-literal-eq): exact sentinel — 0.0 is the initialized value
    sigma == 0.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_equality_is_fine_in_tests() {
        assert!(super::is_unit(1.0) || 0.5 == 0.5);
    }
}
