//! Fixture: malformed waivers. A directive without a justification (or
//! naming an unwaivable rule) is an `allow-syntax` finding, and the
//! underlying violation still fires.

use std::collections::HashMap;

pub struct M {
    // opclint: allow(unordered-iter)
    pub map: HashMap<u64, u64>,
}

pub fn f(x: f64, y: f64) -> std::cmp::Ordering {
    // opclint: allow(panic-budget): the budget is not waivable per-site
    x.partial_cmp(&y).unwrap()
}
