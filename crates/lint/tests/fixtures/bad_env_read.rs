//! Fixture: `OPC_*` environment reads outside a `knobs` module.

/// Flagged: direct read of an OPC_* knob in library code.
pub fn fusion_enabled() -> bool {
    std::env::var("OPC_FUSION").ok().as_deref() != Some("0")
}

/// Flagged: `var_os` counts too.
pub fn cache_dir() -> Option<std::ffi::OsString> {
    std::env::var_os("OPC_CAL_CACHE")
}

/// Flagged: rustfmt-wrapped argument on the line after the call.
pub fn threads() -> Option<String> {
    std::env::var(
        "OPC_THREADS",
    )
    .ok()
}

/// Not flagged: not an OPC_* knob (CARGO_/CI variables are not ours).
pub fn target_dir() -> Option<String> {
    std::env::var("CARGO_TARGET_DIR").ok()
}

/// Not flagged: waived with a justification.
pub fn verify_enabled() -> bool {
    // opclint: allow(env-read): startup-only read, documented alongside the flag it mirrors
    std::env::var("OPC_VERIFY").ok().as_deref() != Some("0")
}

#[cfg(test)]
mod tests {
    #[test]
    fn reads_in_tests_are_exempt() {
        let _ = std::env::var("OPC_FUSION");
    }
}
