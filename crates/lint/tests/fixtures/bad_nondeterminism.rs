//! Fixture: ambient entropy and wall-clock reads in a simulation path.
//! Each use below must be flagged `nondeterminism`.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn reseed() -> u64 {
    let rng = SmallRng::from_entropy();
    rng.next_u64()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn tick() -> std::time::Instant {
    std::time::Instant::now()
}
