//! Fixture: unordered-collection declarations and iteration.
//! Every `HashMap`/`HashSet` site below must be flagged `unordered-iter`.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    pub gates: HashMap<String, u32>,
}

pub fn names(r: &Registry) -> Vec<String> {
    // Iteration via .keys() on a tracked field: order is per-process.
    r.gates.keys().cloned().collect()
}

pub fn walk(r: &Registry) -> u32 {
    let mut total = 0;
    for (_, v) in &r.gates {
        total += v;
    }
    total
}

pub fn drained() -> Vec<(u64, u64)> {
    let mut set = HashSet::new();
    set.insert((1, 2));
    set.drain().collect()
}
