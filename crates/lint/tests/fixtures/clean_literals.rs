//! Fixture: banned patterns inside literals, comments and test modules.
//! Must produce zero findings and a panic count of zero — the whole
//! point of having a real lexer instead of a grep.
// thread_rng() HashMap.iter() partial_cmp(x).unwrap() SystemTime::now()

pub const DOC: &str = "call thread_rng() then map.iter() and SystemTime::now()";
pub const RAW: &str = r#"Instant::now() and from_entropy() and HashSet::new().drain()"#;
pub const GUARDED: &str = r##"more panic! with "quotes" and partial_cmp(a).unwrap()"##;
pub const BYTES: &[u8] = b"panic! unwrap() expect()";
pub const QUOTE_CHAR: char = '"';
pub const ESCAPED: &str = "an escaped \" quote, then thread_rng()";

/* block comment: partial_cmp(a).unwrap() and /* nested HashMap.keys() */ still a comment */

pub fn lifetime_soup<'a>(s: &'a str) -> &'a str {
    let _c = 'x';
    let _q = '\'';
    let r#type = s;
    r#type
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_and_entropy_are_fine_in_tests() {
        let _t = std::time::Instant::now();
        let _rng = rand::thread_rng();
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        for (_k, _v) in &m {}
        let _ = (0.5f64).partial_cmp(&0.25).unwrap();
    }
}
