//! Fixture: justified waivers on lookup-only unordered collections.
//! Must produce zero findings.

use std::collections::HashMap;

pub struct Memo {
    // opclint: allow(unordered-iter): lookup-only memo (get/insert by
    // exact key); never iterated, so order cannot leak into results.
    table: HashMap<u64, f64>,
}

impl Memo {
    pub fn new() -> Self {
        Memo {
            // opclint: allow(unordered-iter): constructor of the lookup-only memo above.
            table: HashMap::new(),
        }
    }

    pub fn get(&self, k: u64) -> Option<f64> {
        self.table.get(&k).copied()
    }

    pub fn put(&mut self, k: u64, v: f64) {
        self.table.insert(k, v);
    }
}
