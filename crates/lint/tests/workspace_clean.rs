//! The self-test that makes the invariants stick: linting the real
//! workspace must produce zero findings and a panic count within the
//! committed baseline. If this test fails, either fix the violation or
//! (for a justified lookup-only collection) add a waiver — never loosen
//! the baseline.

use std::path::Path;

#[test]
fn workspace_has_no_findings_and_respects_the_panic_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = opclint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "opclint findings in the workspace:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    let baseline_text = std::fs::read_to_string(root.join(opclint::BASELINE_FILE))
        .expect("lint-baseline.txt must be committed at the workspace root");
    let committed = opclint::baseline::parse(&baseline_text).expect("parse baseline");
    let (violations, _notes) = opclint::baseline::compare(&committed, &report.panic_counts);
    assert!(
        violations.is_empty(),
        "panic budget exceeded:\n{}",
        violations
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_scan_covers_every_crate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = opclint::lint_workspace(&root).expect("workspace scan");
    // Every member crate (and the root package) must appear in the scan;
    // a walker regression that silently drops a crate would otherwise
    // disable the lint for it.
    for name in [
        "opclint",
        "openpulse-repro",
        "pulse-compiler",
        "quant-algos",
        "quant-char",
        "quant-circuit",
        "quant-device",
        "quant-math",
        "quant-pulse",
        "quant-sim",
        "rand",
        "repro-bench",
    ] {
        assert!(
            report.panic_counts.contains_key(name),
            "crate {name} missing from scan: {:?}",
            report.panic_counts.keys().collect::<Vec<_>>()
        );
    }
}
