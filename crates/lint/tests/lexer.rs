//! Lexer unit tests: the token stream must contain exactly the code
//! identifiers — never tokens from inside strings, raw strings, chars,
//! or comments — with correct line numbers and comment side channel.

use opclint::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn plain_tokens_and_lines() {
    let lexed = lex("let a = 1;\nlet b = foo(a);\n");
    let ids: Vec<(String, u32)> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| (t.text.clone(), t.line))
        .collect();
    assert_eq!(
        ids,
        vec![
            ("let".to_string(), 1),
            ("a".to_string(), 1),
            ("let".to_string(), 2),
            ("b".to_string(), 2),
            ("foo".to_string(), 2),
            ("a".to_string(), 2),
        ]
    );
}

#[test]
fn string_contents_are_not_tokens() {
    let ids = idents(r#"let s = "thread_rng() and HashMap.iter()";"#);
    assert_eq!(ids, vec!["let", "s"]);
}

#[test]
fn escaped_quotes_do_not_end_strings_early() {
    let ids = idents(r#"let s = "escaped \" quote thread_rng()"; let t = s;"#);
    assert_eq!(ids, vec!["let", "s", "let", "t", "s"]);
}

#[test]
fn raw_strings_with_guards_are_skipped() {
    let src = r####"let s = r##"has "quotes" and panic! and Instant::now()"##; done();"####;
    assert_eq!(idents(src), vec!["let", "s", "done"]);
}

#[test]
fn byte_and_c_strings_are_skipped() {
    assert_eq!(idents(r#"let b = b"unwrap()"; x"#), vec!["let", "b", "x"]);
    assert_eq!(
        idents(r##"let r = br#"expect()"#; y"##),
        vec!["let", "r", "y"]
    );
}

#[test]
fn comments_are_side_channel_not_tokens() {
    let src = "let a = 1; // trailing thread_rng()\n// own line HashMap.keys()\nlet b = 2;\n/* block\npanic! */ let c = 3;";
    let lexed = lex(src);
    let ids: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    assert_eq!(lexed.comments.len(), 3);
    assert!(lexed.comments[0].trailing);
    assert!(!lexed.comments[1].trailing);
    assert_eq!(lexed.comments[1].line, 2);
    assert!(lexed.comments[2].text.contains("panic!"));
}

#[test]
fn nested_block_comments_terminate_correctly() {
    let src = "/* outer /* inner HashMap */ still comment */ let after = 1;";
    assert_eq!(idents(src), vec!["let", "after"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(s: &'a str) -> &'a str { let c = 'x'; let q = '\\''; s }";
    let lexed = lex(src);
    let lifetimes: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'a"]);
    // The char literals must not have eaten the trailing `s`.
    assert!(lexed.tokens.iter().any(|t| t.is_ident("s") && t.line == 1));
}

#[test]
fn quote_char_literal_does_not_open_a_string() {
    // If '"' were mis-lexed as opening a string, `hidden` would vanish.
    let src = "let q = '\"'; let hidden = 1;";
    assert_eq!(idents(src), vec!["let", "q", "let", "hidden"]);
}

#[test]
fn raw_identifiers_lex_as_identifiers() {
    assert_eq!(
        idents("let r#type = 1; r#type"),
        vec!["let", "type", "type"]
    );
}

#[test]
fn numbers_do_not_swallow_method_calls_or_ranges() {
    let ids = idents("let x = 1.0f64; let y = 0..n; let z = 2.5.floor();");
    assert!(ids.contains(&"n".to_string()));
    assert!(ids.contains(&"floor".to_string()));
}
