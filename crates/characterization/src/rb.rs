//! Randomized-benchmarking-style sequences (paper §8.3, Fig. 13).
//!
//! The experiment: pick `K−1` random single-qubit unitaries, append the
//! single inversion unitary, run, and record the ground-state survival
//! probability. Fitting `P(K) = a·fᴷ + b` separates gate fidelity `f` from
//! SPAM (`a`, `b`).

use quant_circuit::{Circuit, Gate};
use quant_math::{fit_exp_decay, CMat, ExpDecayFit};
use rand::Rng;

/// Generates one RB-style sequence of `k` operations (including the final
/// inversion) as a circuit on one qubit.
///
/// The first `k−1` operations are Haar-ish random `U3` gates; the last is
/// the exact inverse of their product, so the ideal circuit is the
/// identity.
pub fn rb_sequence(k: usize, rng: &mut impl Rng) -> Circuit {
    assert!(k >= 2, "need at least one random gate plus the inversion");
    let mut c = Circuit::new(1);
    let mut product = CMat::identity(2);
    for _ in 0..k - 1 {
        // Haar-adjacent sampling: θ from arccos distribution, phases flat.
        let u: f64 = rng.gen();
        let theta = (1.0 - 2.0 * u).acos();
        let phi = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let lambda = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let gate = Gate::U3(theta, phi, lambda);
        product = &gate.matrix() * &product;
        c.push(gate, &[0]);
        // RB sequences are deliberately redundant; a barrier keeps the
        // compiler from collapsing them to identity.
        c.push(Gate::Barrier, &[0]);
    }
    // Inversion: decompose the adjoint of the accumulated product.
    let (a, theta, cc) = quant_sim::euler_zxz(&product.dagger());
    c.push(
        Gate::U3(
            theta,
            a - std::f64::consts::FRAC_PI_2,
            cc + std::f64::consts::FRAC_PI_2,
        ),
        &[0],
    );
    c
}

/// Generates an *interleaved* RB sequence: after every random gate, the
/// gate under test is inserted; the final operation still inverts the
/// whole product. Comparing the interleaved decay `f_int` against the
/// plain decay `f_ref` isolates the tested gate's fidelity:
/// `f_gate ≈ f_int / f_ref` (Magesan et al.'s interleaved RB).
pub fn interleaved_rb_sequence(k: usize, gate: Gate, rng: &mut impl Rng) -> Circuit {
    assert!(k >= 2, "need at least one random gate plus the inversion");
    assert_eq!(gate.arity(), 1, "interleaved RB here is single-qubit");
    let mut c = Circuit::new(1);
    let mut product = CMat::identity(2);
    for _ in 0..k - 1 {
        let u: f64 = rng.gen();
        let theta = (1.0 - 2.0 * u).acos();
        let phi = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let lambda = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let random = Gate::U3(theta, phi, lambda);
        product = &random.matrix() * &product;
        c.push(random, &[0]);
        c.push(Gate::Barrier, &[0]);
        product = &gate.matrix() * &product;
        c.push(gate, &[0]);
        c.push(Gate::Barrier, &[0]);
    }
    let (a, theta, cc) = quant_sim::euler_zxz(&product.dagger());
    c.push(
        Gate::U3(
            theta,
            a - std::f64::consts::FRAC_PI_2,
            cc + std::f64::consts::FRAC_PI_2,
        ),
        &[0],
    );
    c
}

/// Extracts the per-gate fidelity of the interleaved gate from the two
/// decay constants: `f_gate = f_interleaved / f_reference`, clamped to
/// `[0, 1]`.
pub fn interleaved_gate_fidelity(f_reference: f64, f_interleaved: f64) -> f64 {
    if f_reference <= 0.0 {
        return 0.0;
    }
    (f_interleaved / f_reference).clamp(0.0, 1.0)
}

/// A full RB dataset: for each sequence length K, the mean ground-state
/// survival probability over several randomizations.
#[derive(Clone, Debug)]
pub struct RbData {
    /// Sequence lengths.
    pub lengths: Vec<usize>,
    /// Mean survival probability per length.
    pub survival: Vec<f64>,
}

impl RbData {
    /// Fits `P(K) = a·fᴷ + b`; `f` is interpreted as per-gate fidelity.
    pub fn fit(&self) -> ExpDecayFit {
        let ks: Vec<f64> = self.lengths.iter().map(|&k| k as f64).collect();
        fit_exp_decay(&ks, &self.survival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::seeded;

    #[test]
    fn sequences_compose_to_identity() {
        let mut rng = seeded(31);
        for k in [2, 5, 10, 25] {
            let c = rb_sequence(k, &mut rng);
            // k gates plus k−1 barriers.
            assert_eq!(c.count_gate("u3"), k);
            let p = c.output_distribution();
            assert!(
                (p[0] - 1.0).abs() < 1e-9,
                "K = {k}: survival {p:?} should be 1 ideally"
            );
        }
    }

    #[test]
    fn sequences_are_random() {
        let mut rng = seeded(32);
        let a = rb_sequence(5, &mut rng);
        let b = rb_sequence(5, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn interleaved_sequences_compose_to_identity() {
        let mut rng = seeded(33);
        for gate in [Gate::X, Gate::DirectX, Gate::H] {
            let c = interleaved_rb_sequence(6, gate, &mut rng);
            let p = c.output_distribution();
            assert!(
                (p[0] - 1.0).abs() < 1e-9,
                "{gate:?}: survival {p:?} should be 1 ideally"
            );
            assert_eq!(c.count_gate(gate.name()), 5);
        }
    }

    #[test]
    fn interleaved_fidelity_extraction() {
        assert!((interleaved_gate_fidelity(0.998, 0.996) - 0.996 / 0.998).abs() < 1e-12);
        assert_eq!(interleaved_gate_fidelity(0.0, 0.5), 0.0);
        assert_eq!(
            interleaved_gate_fidelity(0.9, 0.95),
            1.0_f64.min(0.95 / 0.9)
        );
    }

    #[test]
    fn synthetic_decay_fit() {
        // Survival from a known (f, a, b): the fit must recover f.
        let lengths: Vec<usize> = (2..=25).collect();
        let survival: Vec<f64> = lengths
            .iter()
            .map(|&k| 0.5 * 0.9982_f64.powi(k as i32) + 0.5)
            .collect();
        let data = RbData { lengths, survival };
        let fit = data.fit();
        assert!((fit.f - 0.9982).abs() < 2e-4, "f = {}", fit.f);
    }
}
