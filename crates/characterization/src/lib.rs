//! Characterization and error-analysis tooling for the reproduction.
//!
//! * [`metrics`] — Hellinger distance/fidelity (the paper's top-level
//!   error metric) and total variation.
//! * [`tomography`] — single-qubit state tomography (X/Y/Z axes), Bloch
//!   vectors, and the meridian-deviation quantity of Figs. 6–7.
//! * [`mitigation`] — measurement-error mitigation by confusion-matrix
//!   inversion (§2.4).
//! * [`rb`] — randomized-benchmarking-style sequences and the `a·fᴷ + b`
//!   decay fit of Fig. 13.
//! * [`lda`] — from-scratch linear discriminant analysis for qutrit IQ
//!   readout (§7.2).
//!
//! ```
//! use quant_char::hellinger_distance;
//!
//! let ideal = [0.5, 0.0, 0.0, 0.5];
//! let measured = [0.46, 0.04, 0.05, 0.45];
//! assert!(hellinger_distance(&ideal, &measured) < 0.25);
//! ```

#![warn(missing_docs)]

pub mod lda;
pub mod metrics;
pub mod mitigation;
pub mod process;
pub mod rb;
pub mod tomography;

pub use lda::Lda;
pub use metrics::{
    counts_to_distribution, hellinger_distance, hellinger_fidelity, total_variation,
};
pub use mitigation::Mitigator;
pub use process::{
    entanglement_fidelity_from_average, kraus_process_fidelity, monte_carlo_process_fidelity,
};
pub use rb::{interleaved_gate_fidelity, interleaved_rb_sequence, rb_sequence, RbData};
pub use tomography::{bloch_from_p0, Axis, BlochVector};
