//! Measurement-error mitigation by calibration-matrix inversion.
//!
//! The paper corrects biased readout (§2.4) with the classical
//! post-processing of Maciejewski et al. / Chen et al.: measure the
//! confusion matrix by preparing each basis state, then apply its inverse
//! to measured distributions (with clipping back onto the simplex).

use quant_math::{CMat, C64};

/// A measurement-error mitigator for `n` qubits with a tensor-product
/// confusion model.
#[derive(Clone, Debug)]
pub struct Mitigator {
    /// Per-qubit confusion matrices `M[measured][prepared]`.
    per_qubit: Vec<[[f64; 2]; 2]>,
}

impl Mitigator {
    /// Builds a mitigator from per-qubit confusion matrices.
    pub fn new(per_qubit: Vec<[[f64; 2]; 2]>) -> Self {
        for m in &per_qubit {
            for (&m0, &m1) in m[0].iter().zip(&m[1]) {
                assert!(
                    (m0 + m1 - 1.0).abs() < 1e-9,
                    "confusion matrix columns must sum to 1"
                );
            }
        }
        Mitigator { per_qubit }
    }

    /// Estimates per-qubit confusion matrices from calibration runs: for
    /// each qubit, the measured P(1 | prepared 0) and P(0 | prepared 1).
    pub fn from_calibration(p1_given_0: &[f64], p0_given_1: &[f64]) -> Self {
        assert_eq!(p1_given_0.len(), p0_given_1.len());
        let per_qubit = p1_given_0
            .iter()
            .zip(p0_given_1)
            .map(|(&e0, &e1)| [[1.0 - e0, e1], [e0, 1.0 - e1]])
            .collect();
        Mitigator::new(per_qubit)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.per_qubit.len()
    }

    /// Applies the *forward* confusion model to an ideal distribution
    /// (useful in tests).
    pub fn apply_forward(&self, probs: &[f64]) -> Vec<f64> {
        let n = self.num_qubits();
        assert_eq!(probs.len(), 1 << n);
        let mut cur = probs.to_vec();
        for (q, m) in self.per_qubit.iter().enumerate() {
            let mut next = vec![0.0; cur.len()];
            for (i, &p) in cur.iter().enumerate() {
                let bit = (i >> q) & 1;
                for (meas, row) in m.iter().enumerate() {
                    let j = (i & !(1 << q)) | (meas << q);
                    next[j] += p * row[bit];
                }
            }
            cur = next;
        }
        cur
    }

    /// Mitigates a measured distribution: applies each per-qubit inverse
    /// and projects back onto the probability simplex (clip + renormalize).
    pub fn mitigate(&self, measured: &[f64]) -> Vec<f64> {
        let n = self.num_qubits();
        assert_eq!(measured.len(), 1 << n, "distribution size mismatch");
        let mut cur = measured.to_vec();
        for (q, m) in self.per_qubit.iter().enumerate() {
            let mat = CMat::from_real_rows(&[&[m[0][0], m[0][1]], &[m[1][0], m[1][1]]]);
            let inv = mat.inverse().expect("confusion matrix must be invertible");
            let mut next = vec![0.0; cur.len()];
            for (i, &p) in cur.iter().enumerate() {
                let bit = (i >> q) & 1;
                for prepared in 0..2 {
                    let j = (i & !(1 << q)) | (prepared << q);
                    next[j] += p * inv[(prepared, bit)].re;
                }
            }
            cur = next;
        }
        // Project to the simplex.
        let mut clipped: Vec<f64> = cur.into_iter().map(|p| p.max(0.0)).collect();
        let total: f64 = clipped.iter().sum();
        if total > 0.0 {
            for p in &mut clipped {
                *p /= total;
            }
        }
        clipped
    }

    /// Full 2ⁿ×2ⁿ confusion matrix (tensor product) — for inspection.
    pub fn full_matrix(&self) -> CMat {
        let mut full = CMat::identity(1);
        for m in self.per_qubit.iter().rev() {
            let m2 = CMat::from_real_rows(&[&[m[0][0], m[0][1]], &[m[1][0], m[1][1]]]);
            full = full.kron(&m2);
        }
        let _ = C64::ZERO;
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mitigator2() -> Mitigator {
        Mitigator::from_calibration(&[0.02, 0.03], &[0.06, 0.05])
    }

    #[test]
    fn forward_then_mitigate_recovers_ideal() {
        let m = mitigator2();
        let ideal = [0.5, 0.0, 0.0, 0.5];
        let noisy = m.apply_forward(&ideal);
        assert!(noisy[0] < 0.5, "forward model must mix");
        let recovered = m.mitigate(&noisy);
        for (a, b) in ideal.iter().zip(&recovered) {
            assert!((a - b).abs() < 1e-9, "{recovered:?}");
        }
    }

    #[test]
    fn mitigation_output_is_a_distribution() {
        let m = mitigator2();
        // A noisy empirical distribution (not exactly in the model's
        // image) still maps to a valid distribution.
        let measured = [0.47, 0.04, 0.03, 0.46];
        let out = m.mitigate(&measured);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(out.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn mitigation_reduces_hellinger_error() {
        let m = mitigator2();
        let ideal = [0.125, 0.375, 0.375, 0.125];
        let noisy = m.apply_forward(&ideal);
        let h_before = crate::metrics::hellinger_distance(&ideal, &noisy);
        let h_after = crate::metrics::hellinger_distance(&ideal, &m.mitigate(&noisy));
        assert!(h_after < h_before * 0.05, "{h_before} → {h_after}");
    }

    #[test]
    fn full_matrix_columns_sum_to_one() {
        let full = mitigator2().full_matrix();
        for c in 0..4 {
            let s: f64 = (0..4).map(|r| full[(r, c)].re).sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "columns must sum")]
    fn rejects_invalid_confusion() {
        Mitigator::new(vec![[[0.9, 0.0], [0.2, 1.0]]]);
    }
}
