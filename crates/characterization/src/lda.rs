//! Linear discriminant analysis for qutrit IQ readout (paper §7.2).
//!
//! The paper trains sklearn's `LinearDiscriminantAnalysis` on calibration
//! shots of the prepared |0⟩, |1⟩, |2⟩ states and uses it to classify the
//! resonator's IQ response. This is the same classifier from scratch: a
//! pooled-covariance Gaussian model whose decision functions are linear.

/// A trained 2-D linear discriminant classifier over `k` classes.
#[derive(Clone, Debug)]
pub struct Lda {
    /// Class means.
    means: Vec<(f64, f64)>,
    /// Inverse pooled covariance (2×2, row-major).
    inv_cov: [[f64; 2]; 2],
    /// Log priors.
    log_priors: Vec<f64>,
}

impl Lda {
    /// Trains on labelled IQ points.
    ///
    /// # Panics
    ///
    /// Panics if any class has no samples or the pooled covariance is
    /// singular.
    pub fn train(points: &[(f64, f64)], labels: &[usize], num_classes: usize) -> Self {
        assert_eq!(points.len(), labels.len());
        assert!(num_classes >= 2);
        let mut counts = vec![0usize; num_classes];
        let mut sums = vec![(0.0, 0.0); num_classes];
        for (&p, &l) in points.iter().zip(labels) {
            assert!(l < num_classes, "label {l} out of range");
            counts[l] += 1;
            sums[l].0 += p.0;
            sums[l].1 += p.1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "every class needs at least one sample"
        );
        let means: Vec<(f64, f64)> = sums
            .iter()
            .zip(&counts)
            .map(|(&(sx, sy), &c)| (sx / c as f64, sy / c as f64))
            .collect();

        // Pooled within-class covariance.
        let mut cov = [[0.0f64; 2]; 2];
        for (&p, &l) in points.iter().zip(labels) {
            let dx = p.0 - means[l].0;
            let dy = p.1 - means[l].1;
            cov[0][0] += dx * dx;
            cov[0][1] += dx * dy;
            cov[1][0] += dy * dx;
            cov[1][1] += dy * dy;
        }
        let denom = (points.len() - num_classes) as f64;
        for row in &mut cov {
            for v in row.iter_mut() {
                *v /= denom;
            }
        }
        let det = cov[0][0] * cov[1][1] - cov[0][1] * cov[1][0];
        assert!(det.abs() > 1e-18, "singular pooled covariance");
        let inv_cov = [
            [cov[1][1] / det, -cov[0][1] / det],
            [-cov[1][0] / det, cov[0][0] / det],
        ];
        let total: usize = counts.iter().sum();
        let log_priors = counts
            .iter()
            .map(|&c| (c as f64 / total as f64).ln())
            .collect();
        Lda {
            means,
            inv_cov,
            log_priors,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.means.len()
    }

    /// The linear discriminant score of a point for each class.
    pub fn scores(&self, p: (f64, f64)) -> Vec<f64> {
        self.means
            .iter()
            .zip(&self.log_priors)
            .map(|(&(mx, my), &lp)| {
                // δ_k(x) = xᵀΣ⁻¹μ − ½μᵀΣ⁻¹μ + log π.
                let sx = self.inv_cov[0][0] * mx + self.inv_cov[0][1] * my;
                let sy = self.inv_cov[1][0] * mx + self.inv_cov[1][1] * my;
                p.0 * sx + p.1 * sy - 0.5 * (mx * sx + my * sy) + lp
            })
            .collect()
    }

    /// Classifies a point.
    pub fn classify(&self, p: (f64, f64)) -> usize {
        let scores = self.scores(p);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
    }

    /// Classification accuracy on a labelled set.
    pub fn accuracy(&self, points: &[(f64, f64)], labels: &[usize]) -> f64 {
        let correct = points
            .iter()
            .zip(labels)
            .filter(|(&p, &l)| self.classify(p) == l)
            .count();
        correct as f64 / points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::{normal, seeded};

    fn synthetic_clouds(
        centers: &[(f64, f64)],
        sigma: f64,
        per_class: usize,
        seed: u64,
    ) -> (Vec<(f64, f64)>, Vec<usize>) {
        let mut rng = seeded(seed);
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (k, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..per_class {
                points.push((normal(&mut rng, cx, sigma), normal(&mut rng, cy, sigma)));
                labels.push(k);
            }
        }
        (points, labels)
    }

    #[test]
    fn separable_clouds_classified_accurately() {
        let centers = [(-1.0, -0.4), (1.0, -0.4), (0.15, 1.2)];
        let (pts, lbl) = synthetic_clouds(&centers, 0.3, 800, 41);
        let lda = Lda::train(&pts, &lbl, 3);
        let (test_pts, test_lbl) = synthetic_clouds(&centers, 0.3, 400, 42);
        let acc = lda.accuracy(&test_pts, &test_lbl);
        assert!(acc > 0.96, "accuracy = {acc}");
    }

    #[test]
    fn overlapping_clouds_degrade_gracefully() {
        let centers = [(0.0, 0.0), (0.5, 0.0)];
        let (pts, lbl) = synthetic_clouds(&centers, 0.5, 500, 43);
        let lda = Lda::train(&pts, &lbl, 2);
        let acc = lda.accuracy(&pts, &lbl);
        assert!(acc > 0.6 && acc < 0.9, "accuracy = {acc}");
    }

    #[test]
    fn classify_at_centroids() {
        let centers = [(-2.0, 0.0), (2.0, 0.0), (0.0, 3.0)];
        let (pts, lbl) = synthetic_clouds(&centers, 0.4, 300, 44);
        let lda = Lda::train(&pts, &lbl, 3);
        for (k, &c) in centers.iter().enumerate() {
            assert_eq!(lda.classify(c), k);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty_class() {
        Lda::train(&[(0.0, 0.0), (1.0, 1.0)], &[0, 0], 2);
    }
}
