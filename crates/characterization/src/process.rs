//! Monte-Carlo process fidelity estimation.
//!
//! Direct process tomography needs `4ⁿ` basis experiments; for quick gate
//! characterization a Monte-Carlo estimate over random product input
//! states converges fast and needs only state fidelities. The estimator
//! feeds the reproduction's gate-level sanity checks (e.g. comparing the
//! simulated pulse-level CNOT against the ideal matrix).

use quant_math::CMat;
use quant_sim::{gates, StateVector};
use rand::Rng;

/// Draws a Haar-ish random single-qubit state preparation unitary.
fn random_u3(rng: &mut impl Rng) -> CMat {
    let u: f64 = rng.gen();
    let theta = (1.0 - 2.0 * u).acos();
    let phi = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    let lambda = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    gates::u3(theta, phi, lambda)
}

/// Estimates the average state-transfer fidelity of `apply` against the
/// ideal unitary `target` (dimension `2ⁿ`), by averaging
/// `|⟨ψ_out_ideal|ψ_out_actual⟩|²` over random product input states.
///
/// `apply` receives a freshly prepared input state and must evolve it with
/// the channel under test (it may be stochastic — each sample sees one
/// noise realization).
///
/// The estimate converges to the channel's average *state* fidelity over
/// the product-state ensemble — a close, cheap proxy for the average gate
/// fidelity used throughout the paper.
pub fn monte_carlo_process_fidelity(
    num_qubits: usize,
    target: &CMat,
    mut apply: impl FnMut(&mut StateVector),
    samples: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert_eq!(target.rows(), 1 << num_qubits, "target dimension mismatch");
    assert!(samples > 0);
    let targets: Vec<usize> = (0..num_qubits).collect();
    let mut total = 0.0;
    for _ in 0..samples {
        let mut input = StateVector::zero_qubits(num_qubits);
        for q in 0..num_qubits {
            input.apply_unitary(&random_u3(rng), &[q]);
        }
        let mut ideal = input.clone();
        ideal.apply_unitary(target, &targets);
        let mut actual = input;
        apply(&mut actual);
        total += ideal.fidelity(&actual);
    }
    total / samples as f64
}

/// The same estimator for channels expressed as Kraus sets (applied to a
/// density-matrix copy of each sample). Returns the average fidelity of
/// the channel against the target unitary.
pub fn kraus_process_fidelity(
    num_qubits: usize,
    target: &CMat,
    kraus: &[CMat],
    samples: usize,
    rng: &mut impl Rng,
) -> f64 {
    use quant_sim::DensityMatrix;
    let targets: Vec<usize> = (0..num_qubits).collect();
    let mut total = 0.0;
    for _ in 0..samples {
        let mut input = StateVector::zero_qubits(num_qubits);
        for q in 0..num_qubits {
            input.apply_unitary(&random_u3(rng), &[q]);
        }
        let mut ideal = input.clone();
        ideal.apply_unitary(target, &targets);
        let mut rho = DensityMatrix::from_state(&input);
        rho.apply_kraus(kraus, &targets);
        total += rho.fidelity_pure(&ideal);
    }
    total / samples as f64
}

/// Converts an average state fidelity over the Haar ensemble into the
/// entanglement (process) fidelity: `F_avg = (d·F_pro + 1)/(d + 1)`.
pub fn entanglement_fidelity_from_average(f_avg: f64, dim: usize) -> f64 {
    let d = dim as f64;
    ((d + 1.0) * f_avg - 1.0) / d
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_math::seeded;

    #[test]
    fn perfect_gate_scores_one() {
        let mut rng = seeded(51);
        let f = monte_carlo_process_fidelity(
            2,
            &gates::cnot(),
            |psi| psi.apply_unitary(&gates::cnot(), &[0, 1]),
            64,
            &mut rng,
        );
        assert!((f - 1.0).abs() < 1e-10, "f = {f}");
    }

    #[test]
    fn wrong_gate_scores_low() {
        let mut rng = seeded(52);
        let f = monte_carlo_process_fidelity(
            1,
            &gates::x(),
            |psi| psi.apply_unitary(&gates::z(), &[0]),
            128,
            &mut rng,
        );
        assert!(f < 0.7, "X vs Z should disagree strongly: {f}");
    }

    #[test]
    fn small_coherent_error_is_detected() {
        let mut rng = seeded(53);
        let eps = 0.1;
        let f = monte_carlo_process_fidelity(
            1,
            &gates::x(),
            |psi| psi.apply_unitary(&gates::rx(std::f64::consts::PI + eps), &[0]),
            512,
            &mut rng,
        );
        // Expected infidelity ~ (ε/2)²·(2/3) for a Haar average.
        let expect = 1.0 - (eps / 2.0).powi(2) * 2.0 / 3.0;
        assert!((f - expect).abs() < 0.01, "f = {f} vs expect {expect}");
    }

    #[test]
    fn kraus_estimator_matches_unitary_estimator() {
        let mut rng = seeded(54);
        let channel = vec![gates::h()];
        let f_kraus = kraus_process_fidelity(1, &gates::h(), &channel, 128, &mut rng);
        assert!((f_kraus - 1.0).abs() < 1e-10);
        // Depolarizing with p: F_avg = 1 − p/2 for a single qubit.
        let p = 0.2;
        let f_dep = kraus_process_fidelity(
            1,
            &CMat::identity(2),
            &quant_sim::channels::depolarizing(p),
            2048,
            &mut rng,
        );
        assert!((f_dep - (1.0 - p / 2.0)).abs() < 0.02, "f = {f_dep}");
    }

    #[test]
    fn entanglement_fidelity_conversion() {
        // F_avg = 1 ⇒ F_pro = 1; F_avg = 1/2 on a qubit ⇒ F_pro = 1/4.
        assert!((entanglement_fidelity_from_average(1.0, 2) - 1.0).abs() < 1e-12);
        assert!((entanglement_fidelity_from_average(0.5, 2) - 0.25).abs() < 1e-12);
    }
}
