//! Distribution distances — the paper's top-level error metrics.
//!
//! The paper argues (§8.1) for **Hellinger distance** between the measured
//! and ideal outcome distributions as the right figure of merit for
//! near-term algorithms, rather than probability-of-success.

/// Hellinger distance
/// `H(p, q) = √(½·Σ (√pᵢ − √qᵢ)²)` ∈ [0, 1].
pub fn hellinger_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let s: f64 = p
        .iter()
        .zip(q)
        .map(|(a, b)| (a.max(0.0).sqrt() - b.max(0.0).sqrt()).powi(2))
        .sum();
    (s / 2.0).sqrt()
}

/// Hellinger fidelity `(1 − H²)²` — the complement metric quoted in the
/// paper's Fig. 10.
pub fn hellinger_fidelity(p: &[f64], q: &[f64]) -> f64 {
    let h2 = hellinger_distance(p, q).powi(2);
    (1.0 - h2).powi(2)
}

/// Total variation distance `½·Σ|pᵢ − qᵢ|`.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Normalizes counts into a probability distribution.
pub fn counts_to_distribution(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "empty counts");
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p = [0.25, 0.75];
        assert!(hellinger_distance(&p, &p) < 1e-12);
        assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-12);
        assert!(total_variation(&p, &p) < 1e-12);
    }

    #[test]
    fn antipodal_distributions_have_distance_one() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((hellinger_distance(&p, &q) - 1.0).abs() < 1e-12);
        assert!(hellinger_fidelity(&p, &q) < 1e-12);
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_is_symmetric_and_bounded() {
        let p = [0.5, 0.3, 0.2, 0.0];
        let q = [0.1, 0.1, 0.4, 0.4];
        let h = hellinger_distance(&p, &q);
        assert!((h - hellinger_distance(&q, &p)).abs() < 1e-15);
        assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn counts_normalize() {
        let d = counts_to_distribution(&[250, 750]);
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[1] - 0.75).abs() < 1e-12);
    }
}
