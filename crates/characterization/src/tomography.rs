//! Single-qubit state tomography.
//!
//! The paper's Figs. 5–7 and 9 characterize pulses by measuring the X, Y
//! and Z Bloch components of the final state: three experiment variants
//! (pre-measurement rotations), each repeated for many shots.

use quant_circuit::{Circuit, Gate};

/// The three tomography measurement axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Measure ⟨X⟩: apply H before readout.
    X,
    /// Measure ⟨Y⟩: apply S†·H before readout.
    Y,
    /// Measure ⟨Z⟩: readout directly.
    Z,
}

impl Axis {
    /// All three axes.
    pub fn all() -> [Axis; 3] {
        [Axis::X, Axis::Y, Axis::Z]
    }

    /// Appends the pre-measurement basis rotation for this axis to a
    /// circuit, acting on `qubit`.
    pub fn append_rotation(&self, circuit: &mut Circuit, qubit: u32) {
        match self {
            Axis::X => {
                circuit.h(qubit);
            }
            Axis::Y => {
                circuit.push(Gate::Sdg, &[qubit]);
                circuit.h(qubit);
            }
            Axis::Z => {}
        }
    }

    /// Converts a measured P(outcome = 0) on `qubit` into the Bloch
    /// component: ⟨A⟩ = 2·P(0) − 1.
    pub fn expectation_from_p0(p0: f64) -> f64 {
        2.0 * p0 - 1.0
    }
}

/// A reconstructed single-qubit Bloch vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlochVector {
    /// ⟨X⟩ component.
    pub x: f64,
    /// ⟨Y⟩ component.
    pub y: f64,
    /// ⟨Z⟩ component.
    pub z: f64,
}

impl BlochVector {
    /// Euclidean norm (≤ 1 for physical states; < 1 indicates mixedness).
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// State fidelity with another Bloch vector, assuming at least one is
    /// pure: `F = (1 + r⃗·s⃗)/2`.
    pub fn fidelity(&self, other: &BlochVector) -> f64 {
        (1.0 + self.x * other.x + self.y * other.y + self.z * other.z) / 2.0
    }

    /// Angle from the +Z axis (latitude-like coordinate).
    pub fn polar_angle(&self) -> f64 {
        self.z.acos()
    }

    /// The deviation of the vector from the X = 0 meridian plane — the
    /// quantity plotted in the paper's Figs. 6–7 for DirectRx dephasing.
    pub fn meridian_deviation(&self) -> f64 {
        self.x
    }
}

/// Assembles a Bloch vector from three per-axis P(0) estimates (in X, Y, Z
/// order).
pub fn bloch_from_p0(p0: [f64; 3]) -> BlochVector {
    BlochVector {
        x: Axis::expectation_from_p0(p0[0]),
        y: Axis::expectation_from_p0(p0[1]),
        z: Axis::expectation_from_p0(p0[2]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant_circuit::Circuit;

    /// Ideal tomography of a circuit's qubit-0 state through the actual
    /// measurement-rotation path.
    fn tomograph(circuit: &Circuit) -> BlochVector {
        let mut p0 = [0.0; 3];
        for (i, axis) in Axis::all().iter().enumerate() {
            let mut c = circuit.clone();
            axis.append_rotation(&mut c, 0);
            let probs = c.output_distribution();
            // P(qubit 0 = 0): sum over even indices.
            p0[i] = probs
                .iter()
                .enumerate()
                .filter(|(idx, _)| idx & 1 == 0)
                .map(|(_, &p)| p)
                .sum();
        }
        bloch_from_p0(p0)
    }

    #[test]
    fn tomography_of_cardinal_states() {
        // |0⟩ → +Z.
        let c = Circuit::new(1);
        let b = tomograph(&c);
        assert!((b.z - 1.0).abs() < 1e-10 && b.x.abs() < 1e-10 && b.y.abs() < 1e-10);

        // |+⟩ → +X.
        let mut c = Circuit::new(1);
        c.h(0);
        let b = tomograph(&c);
        assert!((b.x - 1.0).abs() < 1e-10);

        // |+i⟩ = S|+⟩ → +Y.
        let mut c = Circuit::new(1);
        c.h(0).push(Gate::S, &[0]);
        let b = tomograph(&c);
        assert!((b.y - 1.0).abs() < 1e-10, "y = {}", b.y);

        // X|0⟩ → −Z.
        let mut c = Circuit::new(1);
        c.x(0);
        let b = tomograph(&c);
        assert!((b.z + 1.0).abs() < 1e-10);
    }

    #[test]
    fn rx_rotation_traces_meridian() {
        // Rx(θ)|0⟩ stays on the X = 0 meridian: x-component zero.
        for k in 1..8 {
            let theta = k as f64 * 0.39;
            let mut c = Circuit::new(1);
            c.rx(0, theta);
            let b = tomograph(&c);
            assert!(b.meridian_deviation().abs() < 1e-10);
            assert!((b.z - theta.cos()).abs() < 1e-10);
            assert!((b.y + theta.sin()).abs() < 1e-10);
            assert!((b.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn fidelity_of_bloch_vectors() {
        let up = BlochVector {
            x: 0.0,
            y: 0.0,
            z: 1.0,
        };
        let down = BlochVector {
            x: 0.0,
            y: 0.0,
            z: -1.0,
        };
        assert!((up.fidelity(&up) - 1.0).abs() < 1e-12);
        assert!(up.fidelity(&down).abs() < 1e-12);
        let eq = BlochVector {
            x: 1.0,
            y: 0.0,
            z: 0.0,
        };
        assert!((up.fidelity(&eq) - 0.5).abs() < 1e-12);
    }
}
