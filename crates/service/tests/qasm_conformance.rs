//! Frontend conformance: `opc submit` (the service path) must accept and
//! reject exactly the QASM dialect `opc compile` (the `quant-corpus`
//! pipeline) accepts — both are thin wrappers over `quant_circuit::qasm`,
//! and this suite pins them together over the shared fixture tree in
//! `crates/circuit/tests/fixtures/qasm/` so the two frontends can't
//! drift: every bad fixture must be rejected by `submit` with the *same*
//! typed `QasmError` (line, column, message — `PartialEq` is bit-equal),
//! and every valid fixture must be accepted by both.
//!
//! The service is built with `workers: 0` and jobs are never driven, so
//! this exercises the submit-time resolve path only — no calibration, no
//! execution.

use quant_circuit::qasm;
use quant_service::{CompileService, DeviceKind, DeviceSpec, JobSpec, ServiceConfig, ServiceError};
use std::path::{Path, PathBuf};

/// The fixture tree shared with `crates/circuit/tests/qasm_negative.rs`.
fn fixtures(kind: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../circuit/tests/fixtures/qasm")
        .join(kind);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "qasm"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures under {}", dir.display());
    paths
}

fn service() -> CompileService {
    let cfg = ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    };
    CompileService::new(cfg).expect("service start")
}

fn job_for(source: &str) -> JobSpec {
    // 10 qubits covers every fixture width and stays at the service's
    // default `max_qubits` ceiling.
    JobSpec::qasm(
        DeviceSpec::new(DeviceKind::Almaden, 10, 42),
        source.to_string(),
    )
}

#[test]
fn service_rejects_exactly_what_the_parser_rejects() {
    let svc = service();
    for path in fixtures("bad") {
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let parser_err = qasm::parse(&text).expect_err("bad fixture must fail direct parse");
        match svc.submit(job_for(&text)) {
            Err(ServiceError::Parse(service_err)) => assert_eq!(
                service_err,
                parser_err,
                "{}: service and parser errors drifted",
                path.display()
            ),
            Err(other) => panic!(
                "{}: expected Parse rejection, got {other:?}",
                path.display()
            ),
            Ok(_) => panic!(
                "{}: service accepted a program the parser rejects",
                path.display()
            ),
        }
    }
}

#[test]
fn service_accepts_exactly_what_the_parser_accepts() {
    let svc = service();
    for path in fixtures("valid") {
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let circuit = qasm::parse(&text)
            .unwrap_or_else(|e| panic!("{}: parser rejected: {e}", path.display()));
        let ticket = svc
            .submit(job_for(&text))
            .unwrap_or_else(|e| panic!("{}: service rejected: {e:?}", path.display()));
        drop(ticket); // never driven: submit-time acceptance is the contract
        assert!(circuit.num_qubits() <= 10, "{}", path.display());
    }
}
