//! Service-level guarantees: bit-identical results at any worker count,
//! single-computation dedup, typed backpressure, and 4xx-style rejection
//! of bad input. Run in CI at `OPC_THREADS=1` and `4` (the env pool feeds
//! shard calibration, so both execution and tune-up fan-out vary).

use pulse_compiler::CompileMode;
use quant_circuit::Circuit;
use quant_service::{CompileService, DeviceKind, DeviceSpec, JobSpec, ServiceConfig};

fn service(workers: usize) -> CompileService {
    service_with(workers, ServiceConfig::default())
}

fn service_with(workers: usize, mut cfg: ServiceConfig) -> CompileService {
    cfg.workers = workers;
    CompileService::new(cfg).expect("service start")
}

/// A mixed job set: two devices, both compile modes, parameterized and
/// plain programs, QASM and IR sources.
fn job_set() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (k, mode) in [(1, CompileMode::Standard), (2, CompileMode::Optimized)] {
        let mut job = JobSpec::qasm(
            DeviceSpec::new(DeviceKind::Armonk, 1, 42),
            format!("qreg q[1]; rx({k}*pi/3) q[0];"),
        );
        job.mode = mode;
        job.shots = 500;
        job.seed = 11 + k as u64;
        jobs.push(job);
    }
    for k in 0..3u32 {
        let mut job = JobSpec::qasm(
            DeviceSpec::new(DeviceKind::Almaden, 2, 43),
            format!("qreg q[2]; h q[0]; cx q[0], q[1]; rz({}*pi/8) q[1];", k + 1),
        );
        job.shots = 400;
        job.seed = 21 + k as u64;
        jobs.push(job);
    }
    let mut bell = Circuit::new(2);
    bell.h(0).cnot(0, 1);
    let mut job = JobSpec::ir(DeviceSpec::new(DeviceKind::Almaden, 2, 43), bell);
    job.shots = 300;
    job.noisy = false;
    jobs.push(job);
    jobs
}

fn run_all(workers: usize) -> Vec<(u64, Vec<u64>, u64, f64)> {
    let svc = service(workers);
    let tickets: Vec<_> = job_set()
        .into_iter()
        .map(|job| svc.submit(job).expect("submit"))
        .collect();
    tickets
        .into_iter()
        .map(|t| {
            let out = t.wait().expect("job result");
            (out.key, out.counts.clone(), out.duration_dt, out.fidelity)
        })
        .collect()
}

#[test]
fn results_bit_identical_at_any_worker_count() {
    let at_one = run_all(1);
    let at_four = run_all(4);
    assert_eq!(at_one.len(), at_four.len());
    for (i, (a, b)) in at_one.iter().zip(&at_four).enumerate() {
        assert_eq!(a.0, b.0, "job {i}: key");
        assert_eq!(a.1, b.1, "job {i}: counts");
        assert_eq!(a.2, b.2, "job {i}: duration");
        assert_eq!(a.3.to_bits(), b.3.to_bits(), "job {i}: fidelity bits");
    }
}

#[test]
fn identical_jobs_compile_once() {
    // workers: 0 → nothing executes until `run_pending`, so all eight
    // submissions are in the queue/dedup structures when work starts —
    // the in-flight coalescing path, with no scheduler race.
    let svc = service(0);
    let job = JobSpec::qasm(
        DeviceSpec::new(DeviceKind::Armonk, 1, 7),
        "qreg q[1]; h q[0];",
    );
    let tickets: Vec<_> = (0..8)
        .map(|_| svc.submit(job.clone()).expect("submit"))
        .collect();
    assert!(!tickets[0].deduped());
    assert!(tickets[1..].iter().all(|t| t.deduped()));
    assert_eq!(svc.run_pending(), 1, "one queued computation");
    let outputs: Vec<_> = tickets.iter().map(|t| t.wait().expect("result")).collect();
    let stats = svc.stats();
    assert_eq!(stats.compiles, 1, "one compile for eight submissions");
    assert_eq!(stats.dedup_hits, 7);
    assert_eq!(stats.submitted, 1);
    for out in &outputs[1..] {
        assert!(
            std::sync::Arc::ptr_eq(&outputs[0], out),
            "deduped tickets share one output allocation"
        );
    }

    // A ninth submission after completion hits the result memo instead.
    let memo_ticket = svc.submit(job).expect("submit");
    assert!(memo_ticket.deduped());
    assert_eq!(svc.stats().dedup_hits, 8);
    assert_eq!(svc.stats().compiles, 1);
    assert_eq!(
        memo_ticket.wait().expect("memo result").counts,
        outputs[0].counts
    );
}

#[test]
fn threaded_duplicates_also_compile_once() {
    // The same property with real workers: duplicates either coalesce
    // in-flight or hit the memo, but the compile count stays 1.
    let svc = service(4);
    let job = JobSpec::qasm(
        DeviceSpec::new(DeviceKind::Armonk, 1, 9),
        "qreg q[1]; rx(pi/5) q[0];",
    );
    let tickets: Vec<_> = (0..8)
        .map(|_| svc.submit(job.clone()).expect("submit"))
        .collect();
    let first = tickets[0].wait().expect("result");
    for t in &tickets[1..] {
        assert_eq!(t.wait().expect("result").counts, first.counts);
    }
    let stats = svc.stats();
    assert_eq!(stats.compiles, 1);
    assert_eq!(stats.dedup_hits, 7);
}

#[test]
fn full_queue_overloads_with_a_typed_error() {
    let svc = service_with(
        0,
        ServiceConfig {
            queue_capacity: 2,
            ..ServiceConfig::default()
        },
    );
    let job = |k: u64| {
        let mut j = JobSpec::qasm(
            DeviceSpec::new(DeviceKind::Armonk, 1, 7),
            "qreg q[1]; x q[0];",
        );
        j.seed = k; // distinct keys, so dedup cannot absorb them
        j
    };
    svc.submit(job(1)).expect("first fits");
    svc.submit(job(2)).expect("second fits");
    match svc.submit(job(3)) {
        Err(quant_service::ServiceError::Overloaded { capacity }) => {
            assert_eq!(capacity, 2)
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(svc.stats().overloads, 1);
    // Draining frees the queue; the next submission is accepted. Both
    // jobs share a device shard, so they drain as one batch.
    assert_eq!(svc.run_pending(), 1);
    assert_eq!(svc.stats().completed, 2);
    assert_eq!(svc.stats().batches, 1);
    svc.submit(job(3)).expect("fits after drain");
}

#[test]
fn bad_programs_are_rejected_before_queueing() {
    let svc = service(0);
    let submit_src = |src: &str| {
        svc.submit(JobSpec::qasm(
            DeviceSpec::new(DeviceKind::Almaden, 2, 7),
            src,
        ))
    };
    match submit_src("qreg q[2]; frobnicate q[0];") {
        Err(quant_service::ServiceError::Parse(e)) => {
            assert_eq!(e.line, 1);
            assert!(e.column > 1);
            assert!(e.message.contains("frobnicate"));
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
    assert!(matches!(
        submit_src("qreg q[2]; cx q[0], q[0];"),
        Err(quant_service::ServiceError::Parse(_))
    ));
    // Wider than the device.
    assert!(matches!(
        submit_src("qreg q[5]; x q[4];"),
        Err(quant_service::ServiceError::InvalidRequest(_))
    ));
    // Wider than the service cap.
    let wide = svc.submit(JobSpec::qasm(
        DeviceSpec::new(DeviceKind::Almaden, 64, 7),
        "qreg q[64]; x q[0];",
    ));
    assert!(matches!(
        wide,
        Err(quant_service::ServiceError::InvalidRequest(_))
    ));
    // Zero shots.
    let mut zero = JobSpec::qasm(
        DeviceSpec::new(DeviceKind::Armonk, 1, 7),
        "qreg q[1]; x q[0];",
    );
    zero.shots = 0;
    assert!(matches!(
        svc.submit(zero),
        Err(quant_service::ServiceError::InvalidRequest(_))
    ));
    // Nothing reached the queue.
    assert_eq!(svc.stats().submitted, 0);
    assert_eq!(svc.run_pending(), 0);
}

#[test]
fn uncoupled_pairs_come_back_as_compile_errors() {
    // A CZ between qubits 0 and 2 on a 3-qubit line: no direct coupling,
    // and the service's compiler does not route — the job must fail as a
    // value, not a panic.
    let svc = service(1);
    let mut c = Circuit::new(3);
    c.push(quant_circuit::Gate::Cz, &[0, 2]);
    let ticket = svc
        .submit(JobSpec::ir(DeviceSpec::new(DeviceKind::Almaden, 3, 7), c))
        .expect("submits fine");
    match ticket.wait() {
        Err(quant_service::ServiceError::Compile(msg)) => {
            assert!(!msg.is_empty());
        }
        other => panic!("expected Compile error, got {other:?}"),
    }
}

#[test]
fn wire_round_trip_through_in_process_service() {
    // The opc serve/submit path without a socket: request bytes in,
    // response bytes out, exact fidelity bits back.
    use std::io::BufReader;
    let svc = service(1);
    let job = JobSpec::qasm(
        DeviceSpec::new(DeviceKind::Almaden, 2, 7),
        "qreg q[2]; h q[0]; cx q[0], q[1];",
    );
    let mut request = Vec::new();
    quant_service::wire::write_request(&mut request, &job).expect("serialize");
    let mut reader = BufReader::new(&request[..]);
    let mut response = Vec::new();
    quant_service::wire::serve_connection(&mut reader, &mut response, &svc).expect("serve");
    let parsed =
        quant_service::wire::read_response(&mut BufReader::new(&response[..])).expect("parse");
    let direct = svc.submit(job).expect("submit").wait().expect("result");
    match parsed {
        quant_service::wire::WireResponse::Ok(out) => {
            assert_eq!(out.counts, direct.counts);
            assert_eq!(out.fidelity.to_bits(), direct.fidelity.to_bits());
            assert_eq!(out.key, direct.key);
        }
        quant_service::wire::WireResponse::Error(kind, msg) => {
            panic!("wire error {kind}: {msg}")
        }
    }
    // The wire submission already computed it; the direct one deduped.
    assert_eq!(svc.stats().compiles, 1);
}

#[test]
fn shutdown_fails_queued_jobs_instead_of_hanging() {
    let svc = service(0);
    let ticket = svc
        .submit(JobSpec::qasm(
            DeviceSpec::new(DeviceKind::Armonk, 1, 7),
            "qreg q[1]; x q[0];",
        ))
        .expect("submit");
    drop(svc);
    assert!(matches!(
        ticket.wait(),
        Err(quant_service::ServiceError::ShutDown)
    ));
}
