//! A line-oriented text protocol for `opc serve` / `opc submit`.
//!
//! One connection carries any number of requests, answered in order:
//!
//! ```text
//! OPCJOB 1
//! device almaden 2 7
//! mode optimized
//! shots 4000
//! seed 7
//! noisy 1
//! qasm
//! qreg q[2];
//! h q[0];
//! cx q[0], q[1];
//! .
//! ```
//!
//! The QASM body is terminated by a lone `.` (no statement in the
//! supported dialect starts with one). Responses are either
//!
//! ```text
//! OPCRESULT ok
//! key 1f2e3d4c5b6a7988
//! qubits 2
//! duration_dt 13536
//! pulses 9
//! fidelity 0.98 3fef5c28f5c28f5c
//! counts 1943 12 38 2007
//! assembly
//! OPENQASM 2.0;
//! ...
//! .
//! end
//! ```
//!
//! (`fidelity` carries both a readable decimal and the exact `f64` bit
//! pattern in hex, so clients can round-trip the value bit-for-bit), or
//!
//! ```text
//! OPCRESULT error overloaded
//! message service overloaded (queue capacity 256)
//! end
//! ```
//!
//! The parser is as defensive as the service itself: malformed frames
//! come back as `io::ErrorKind::InvalidData`, never a panic.

use crate::service::{CompileService, JobOutput, ServiceError};
use crate::spec::{CircuitSource, DeviceKind, DeviceSpec, JobSpec};
use pulse_compiler::CompileMode;
use std::io::{self, BufRead, Write};

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serializes a request frame.
pub fn write_request<W: Write>(w: &mut W, spec: &JobSpec) -> io::Result<()> {
    let qasm_text = match &spec.circuit {
        CircuitSource::Qasm(src) => src.clone(),
        CircuitSource::Ir(circuit) => quant_circuit::qasm::print(circuit),
    };
    writeln!(w, "OPCJOB 1")?;
    writeln!(
        w,
        "device {} {} {}",
        spec.device.kind.name(),
        spec.device.qubits,
        spec.device.seed
    )?;
    writeln!(
        w,
        "mode {}",
        match spec.mode {
            CompileMode::Standard => "standard",
            CompileMode::Optimized => "optimized",
        }
    )?;
    writeln!(w, "shots {}", spec.shots)?;
    writeln!(w, "seed {}", spec.seed)?;
    writeln!(w, "noisy {}", u8::from(spec.noisy))?;
    writeln!(w, "qasm")?;
    for line in qasm_text.lines() {
        writeln!(w, "{line}")?;
    }
    writeln!(w, ".")?;
    w.flush()
}

/// Reads one request frame; `Ok(None)` on a clean EOF before the header.
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<JobSpec>> {
    let mut header = String::new();
    loop {
        header.clear();
        if r.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        if !header.trim().is_empty() {
            break;
        }
    }
    if header.trim() != "OPCJOB 1" {
        return Err(bad(format!("expected `OPCJOB 1`, got `{}`", header.trim())));
    }
    let mut device = None;
    let mut mode = CompileMode::Optimized;
    let mut shots = 4000usize;
    let mut seed = 7u64;
    let mut noisy = true;
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(bad("unexpected EOF inside OPCJOB frame"));
        }
        let trimmed = line.trim();
        let mut fields = trimmed.split_whitespace();
        match fields.next() {
            Some("device") => {
                let kind = fields
                    .next()
                    .and_then(DeviceKind::parse)
                    .ok_or_else(|| bad("device line needs `armonk|almaden`"))?;
                let qubits = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("device line needs a qubit count"))?;
                let dev_seed = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("device line needs a seed"))?;
                device = Some(DeviceSpec::new(kind, qubits, dev_seed));
            }
            Some("mode") => {
                mode = match fields.next() {
                    Some("standard") => CompileMode::Standard,
                    Some("optimized") => CompileMode::Optimized,
                    other => return Err(bad(format!("unknown mode {other:?}"))),
                };
            }
            Some("shots") => {
                shots = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("shots needs an integer"))?;
            }
            Some("seed") => {
                seed = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("seed needs an integer"))?;
            }
            Some("noisy") => {
                noisy = match fields.next() {
                    Some("0") => false,
                    Some("1") => true,
                    other => return Err(bad(format!("noisy needs 0 or 1, got {other:?}"))),
                };
            }
            Some("qasm") => break,
            other => return Err(bad(format!("unknown OPCJOB field {other:?}"))),
        }
    }
    let mut qasm_text = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(bad("unexpected EOF inside qasm body"));
        }
        if line.trim_end() == "." {
            break;
        }
        qasm_text.push_str(&line);
    }
    let device = device.ok_or_else(|| bad("OPCJOB frame missing a device line"))?;
    Ok(Some(JobSpec {
        device,
        circuit: CircuitSource::Qasm(qasm_text),
        mode,
        shots,
        seed,
        noisy,
    }))
}

fn error_kind(e: &ServiceError) -> &'static str {
    match e {
        ServiceError::Overloaded { .. } => "overloaded",
        ServiceError::Parse(_) => "parse",
        ServiceError::InvalidRequest(_) => "invalid",
        ServiceError::Compile(_) => "compile",
        ServiceError::Verify(_) => "verify",
        ServiceError::Exec(_) => "exec",
        ServiceError::ShutDown => "shutdown",
        ServiceError::Spawn(_) => "spawn",
    }
}

/// Serializes a response frame.
pub fn write_response<W: Write>(
    w: &mut W,
    result: &Result<std::sync::Arc<JobOutput>, ServiceError>,
) -> io::Result<()> {
    match result {
        Ok(out) => {
            writeln!(w, "OPCRESULT ok")?;
            writeln!(w, "key {:016x}", out.key)?;
            writeln!(w, "qubits {}", out.num_qubits)?;
            writeln!(w, "duration_dt {}", out.duration_dt)?;
            writeln!(w, "pulses {}", out.pulse_count)?;
            writeln!(
                w,
                "fidelity {} {:016x}",
                out.fidelity,
                out.fidelity.to_bits()
            )?;
            write!(w, "counts")?;
            for c in &out.counts {
                write!(w, " {c}")?;
            }
            writeln!(w)?;
            writeln!(w, "assembly")?;
            for line in out.assembly_qasm.lines() {
                writeln!(w, "{line}")?;
            }
            writeln!(w, ".")?;
        }
        Err(e) => {
            writeln!(w, "OPCRESULT error {}", error_kind(e))?;
            writeln!(w, "message {e}")?;
        }
    }
    writeln!(w, "end")?;
    w.flush()
}

/// A client-side view of a response: either the job output (with the
/// server-computed key/fidelity bits restored exactly) or the error kind
/// + rendered message.
#[derive(Clone, Debug, PartialEq)]
pub enum WireResponse {
    /// Success frame.
    Ok(JobOutput),
    /// Error frame: `(kind, message)` as sent by the server.
    Error(String, String),
}

/// Reads one response frame.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<WireResponse> {
    let mut header = String::new();
    loop {
        header.clear();
        if r.read_line(&mut header)? == 0 {
            return Err(bad("unexpected EOF before OPCRESULT"));
        }
        if !header.trim().is_empty() {
            break;
        }
    }
    let header = header.trim().to_string();
    let mut line = String::new();
    if let Some(kind) = header.strip_prefix("OPCRESULT error") {
        let kind = kind.trim().to_string();
        let mut message = String::new();
        loop {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                return Err(bad("unexpected EOF inside error frame"));
            }
            let trimmed = line.trim_end();
            if trimmed == "end" {
                return Ok(WireResponse::Error(kind, message));
            }
            if let Some(msg) = trimmed.strip_prefix("message ") {
                message = msg.to_string();
            }
        }
    }
    if header != "OPCRESULT ok" {
        return Err(bad(format!("expected OPCRESULT, got `{header}`")));
    }
    let mut out = JobOutput {
        key: 0,
        num_qubits: 0,
        assembly_qasm: String::new(),
        duration_dt: 0,
        pulse_count: 0,
        counts: Vec::new(),
        fidelity: 0.0,
        completed_tick: 0,
    };
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(bad("unexpected EOF inside ok frame"));
        }
        let trimmed = line.trim_end();
        if trimmed == "end" {
            return Ok(WireResponse::Ok(out));
        }
        let mut fields = trimmed.split_whitespace();
        match fields.next() {
            Some("key") => {
                out.key = fields
                    .next()
                    .and_then(|v| u64::from_str_radix(v, 16).ok())
                    .ok_or_else(|| bad("key needs a hex word"))?;
            }
            Some("qubits") => {
                out.num_qubits = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("qubits needs an integer"))?;
            }
            Some("duration_dt") => {
                out.duration_dt = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("duration_dt needs an integer"))?;
            }
            Some("pulses") => {
                out.pulse_count = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("pulses needs an integer"))?;
            }
            Some("fidelity") => {
                // Second field is the exact bit pattern; the decimal is
                // for human eyes only.
                let bits = fields
                    .nth(1)
                    .and_then(|v| u64::from_str_radix(v, 16).ok())
                    .ok_or_else(|| bad("fidelity needs decimal + bits-hex"))?;
                out.fidelity = f64::from_bits(bits);
            }
            Some("counts") => {
                out.counts = fields
                    .map(|v| v.parse::<u64>().map_err(|_| bad("counts need integers")))
                    .collect::<io::Result<_>>()?;
            }
            Some("assembly") => loop {
                line.clear();
                if r.read_line(&mut line)? == 0 {
                    return Err(bad("unexpected EOF inside assembly body"));
                }
                if line.trim_end() == "." {
                    break;
                }
                out.assembly_qasm.push_str(&line);
            },
            other => return Err(bad(format!("unknown OPCRESULT field {other:?}"))),
        }
    }
}

/// Server side of one connection: read requests, submit, wait, answer —
/// until EOF. Errors become error frames, not panics; only transport
/// failures (broken pipe) propagate. Reader and writer are separate so a
/// `TcpStream` can be split with `try_clone` and the read side buffered.
pub fn serve_connection<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    service: &CompileService,
) -> io::Result<()> {
    loop {
        let Some(spec) = read_request(reader)? else {
            return Ok(());
        };
        let result = match service.submit(spec) {
            Ok(ticket) => ticket.wait(),
            Err(e) => Err(e),
        };
        write_response(writer, &result)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn spec() -> JobSpec {
        JobSpec {
            device: DeviceSpec::new(DeviceKind::Almaden, 2, 7),
            circuit: CircuitSource::Qasm("qreg q[2];\nh q[0];\ncx q[0], q[1];\n".into()),
            mode: CompileMode::Standard,
            shots: 123,
            seed: 99,
            noisy: false,
        }
    }

    #[test]
    fn request_round_trips() {
        let mut buf = Vec::new();
        write_request(&mut buf, &spec()).unwrap();
        let mut r = BufReader::new(&buf[..]);
        let parsed = read_request(&mut r).unwrap().unwrap();
        assert_eq!(parsed, spec());
        // EOF after the single frame.
        assert_eq!(read_request(&mut r).unwrap(), None);
    }

    #[test]
    fn ok_response_round_trips_bit_exactly() {
        let out = JobOutput {
            key: 0xdead_beef_1234_5678,
            num_qubits: 2,
            assembly_qasm: "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n".into(),
            duration_dt: 4242,
            pulse_count: 9,
            counts: vec![10, 0, 3, 87],
            fidelity: 0.987654321012345,
            completed_tick: 0,
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &Ok(std::sync::Arc::new(out.clone()))).unwrap();
        let mut r = BufReader::new(&buf[..]);
        match read_response(&mut r).unwrap() {
            WireResponse::Ok(parsed) => {
                assert_eq!(parsed, out);
                assert_eq!(parsed.fidelity.to_bits(), out.fidelity.to_bits());
            }
            WireResponse::Error(..) => panic!("expected ok frame"),
        }
    }

    #[test]
    fn error_response_round_trips() {
        let mut buf = Vec::new();
        write_response(&mut buf, &Err(ServiceError::Overloaded { capacity: 8 })).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_response(&mut r).unwrap(),
            WireResponse::Error(
                "overloaded".into(),
                "service overloaded (queue capacity 8)".into()
            )
        );
    }

    #[test]
    fn malformed_frames_are_io_errors_not_panics() {
        for garbage in [
            "HELLO\n",
            "OPCJOB 1\nqasm\n", // EOF before `.`
            "OPCJOB 1\ndevice martian 1 1\nqasm\n.\n",
            "OPCJOB 1\nqasm\n.\n", // no device line
        ] {
            let mut r = BufReader::new(garbage.as_bytes());
            assert!(read_request(&mut r).is_err(), "accepted: {garbage:?}");
        }
        let mut r = BufReader::new("OPCRESULT ok\nbogus field\nend\n".as_bytes());
        assert!(read_response(&mut r).is_err());
    }
}
