//! The job engine: bounded queue, worker pool, dedup, shards, batching.

use crate::spec::{job_key, CircuitSource, DeviceSpec, JobSpec};
use pulse_compiler::Compiler;
use quant_char::{counts_to_distribution, hellinger_fidelity};
use quant_circuit::qasm::{self, QasmError};
use quant_circuit::Circuit;
use quant_device::{
    CalStore, Calibration, CalibrationOptions, DeviceModel, ExecError, ProbeCache, PulseExecutor,
    ShotPool,
};
use quant_math::{seeded, stream_seed};
use quant_pulse::ScheduleFinding;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// The RNG stream index jobs draw execution randomness from
/// (`seeded(stream_seed(job.seed, EXEC_STREAM))`), held apart from index 0
/// so a job seed never aliases its own raw `seeded(seed)` stream.
const EXEC_STREAM: u64 = 0x5eb;

/// Everything that can go wrong with a job, as a value. The service never
/// panics on untrusted input or load: malformed programs come back as
/// [`ServiceError::Parse`]/[`ServiceError::InvalidRequest`] (the 4xx
/// class), a full queue as [`ServiceError::Overloaded`] (the 429/503
/// class), and backend failures as typed compile/execute errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The bounded queue is full; retry later (carries the configured
    /// capacity so clients can size their backoff).
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The QASM payload did not parse.
    Parse(QasmError),
    /// The request is structurally invalid for the target device.
    InvalidRequest(String),
    /// Lowering failed (e.g. a two-qubit gate on an uncoupled pair).
    Compile(String),
    /// The compiled schedule failed static verification; the job is
    /// rejected before any simulation work is spent on it.
    Verify(Vec<ScheduleFinding>),
    /// Pulse execution failed.
    Exec(ExecError),
    /// The service is shutting down; queued work was abandoned.
    ShutDown,
    /// A worker thread could not be spawned at construction.
    Spawn(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { capacity } => {
                write!(f, "service overloaded (queue capacity {capacity})")
            }
            ServiceError::Parse(e) => write!(f, "parse error: {e}"),
            ServiceError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServiceError::Compile(msg) => write!(f, "compile error: {msg}"),
            ServiceError::Verify(findings) => {
                write!(
                    f,
                    "schedule verification failed ({} finding(s)",
                    findings.len()
                )?;
                match findings.first() {
                    Some(first) => write!(f, "; first: {first})"),
                    None => write!(f, ")"),
                }
            }
            ServiceError::Exec(e) => write!(f, "execution error: {e}"),
            ServiceError::ShutDown => write!(f, "service shut down"),
            ServiceError::Spawn(msg) => write!(f, "worker spawn failed: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Service tuning knobs.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads. `0` spawns none — jobs queue until the caller
    /// drives them with [`CompileService::run_pending`] (deterministic
    /// single-threaded mode, used by tests and `opc submit` without a
    /// server).
    pub workers: usize,
    /// Maximum queued (not yet claimed) jobs before submissions are
    /// rejected with [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum jobs a worker claims per batch (all on one device shard).
    pub batch_max: usize,
    /// Coalesce identical jobs (in-flight sharing + completed-result memo).
    pub dedup: bool,
    /// Completed results kept for memo hits (FIFO eviction).
    pub result_cache_entries: usize,
    /// Largest register a job may target — a cap on untrusted input, not
    /// a simulator limit (the ideal-distribution check is `O(2ⁿ)`).
    pub max_qubits: u32,
    /// Largest shot count a job may request.
    pub max_shots: usize,
    /// Optional monotonic tick source (e.g. microseconds since service
    /// start). Library code takes no wall clock of its own — the
    /// determinism lint bans it — so latency accounting is injected:
    /// outputs carry `completed_tick` from this closure, `0` without one.
    pub clock: Option<Arc<dyn Fn() -> u64 + Send + Sync>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: ShotPool::from_env().threads(),
            queue_capacity: 256,
            batch_max: 8,
            dedup: true,
            result_cache_entries: 512,
            max_qubits: 10,
            max_shots: 1 << 20,
            clock: None,
        }
    }
}

impl fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("batch_max", &self.batch_max)
            .field("dedup", &self.dedup)
            .field("result_cache_entries", &self.result_cache_entries)
            .field("max_qubits", &self.max_qubits)
            .field("max_shots", &self.max_shots)
            .field("clock", &self.clock.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// A finished job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutput {
    /// The job's content-addressed key.
    pub key: u64,
    /// Register width.
    pub num_qubits: u32,
    /// The compiled basis-stage program, printed as OpenQASM.
    pub assembly_qasm: String,
    /// Pulse schedule duration in `dt` units.
    pub duration_dt: u64,
    /// Pulses played by the schedule.
    pub pulse_count: usize,
    /// Sampled measurement counts (index = bitstring, q0 least
    /// significant).
    pub counts: Vec<u64>,
    /// Hellinger fidelity of the sampled counts against the circuit's
    /// ideal output distribution.
    pub fidelity: f64,
    /// Tick from the injected [`ServiceConfig::clock`] at completion
    /// (`0` when no clock is configured).
    pub completed_tick: u64,
}

/// A claim on a submitted job's eventual result.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<JobSlot>,
    key: u64,
    deduped: bool,
}

impl Ticket {
    /// The job's content-addressed key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Whether this submission coalesced onto an existing computation or
    /// memoized result instead of enqueueing new work.
    pub fn deduped(&self) -> bool {
        self.deduped
    }

    /// Blocks until the job completes and returns its result. Multiple
    /// deduped tickets for one computation all receive the same
    /// `Arc<JobOutput>`.
    pub fn wait(&self) -> Result<Arc<JobOutput>, ServiceError> {
        let mut done = lock(&self.slot.done);
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.slot.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking probe: `None` while the job is still in flight.
    pub fn poll(&self) -> Option<Result<Arc<JobOutput>, ServiceError>> {
        lock(&self.slot.done).clone()
    }
}

/// Counters exported by [`CompileService::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs accepted into the queue (dedup hits excluded).
    pub submitted: u64,
    /// Jobs whose computation ran to a result (ok or error).
    pub completed: u64,
    /// Submissions answered by coalescing (in-flight or memo).
    pub dedup_hits: u64,
    /// Compile+execute passes actually performed.
    pub compiles: u64,
    /// Worker claims that batched more than one job.
    pub batches: u64,
    /// Submissions rejected with [`ServiceError::Overloaded`].
    pub overloads: u64,
}

struct JobSlot {
    done: Mutex<Option<Result<Arc<JobOutput>, ServiceError>>>,
    cv: Condvar,
}

impl fmt::Debug for JobSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JobSlot")
    }
}

impl JobSlot {
    fn empty() -> Self {
        JobSlot {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn ready(result: Result<Arc<JobOutput>, ServiceError>) -> Self {
        JobSlot {
            done: Mutex::new(Some(result)),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, result: Result<Arc<JobOutput>, ServiceError>) {
        let mut done = lock(&self.done);
        if done.is_none() {
            *done = Some(result);
        }
        self.cv.notify_all();
    }
}

/// A job whose QASM has been parsed and whose request limits have been
/// checked — the form workers execute.
struct ResolvedJob {
    device: DeviceSpec,
    circuit: Circuit,
    mode: pulse_compiler::CompileMode,
    shots: usize,
    seed: u64,
    noisy: bool,
}

struct Pending {
    key: u64,
    job: ResolvedJob,
    slot: Arc<JobSlot>,
}

/// Warm per-device state shared by every job on one shard.
struct ShardData {
    device: DeviceModel,
    calibration: Calibration,
}

struct Shard {
    data: OnceLock<ShardData>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    // Key → slot of each not-yet-completed computation, for in-flight
    // coalescing. Lookup/insert/remove by key only — never iterated.
    // opclint: allow(unordered-iter): dedup index; per-key lookups only, no iteration
    inflight: HashMap<u64, Arc<JobSlot>>,
    // Bounded completed-result memo; `memo_order` provides deterministic
    // FIFO eviction so the map itself is never iterated.
    // opclint: allow(unordered-iter): result memo; per-key lookups only, eviction via memo_order
    memo: HashMap<u64, Arc<JobOutput>>,
    memo_order: VecDeque<u64>,
    shutdown: bool,
}

struct ServiceInner {
    cfg: ServiceConfig,
    state: Mutex<QueueState>,
    /// Signals workers that the queue gained work (or shutdown began).
    work_cv: Condvar,
    // Device-spec key → shard. Lookup/insert by key only — never iterated.
    // opclint: allow(unordered-iter): shard index; per-key lookups only, no iteration
    shards: Mutex<HashMap<u64, Arc<Shard>>>,
    /// Noiseless tune-up probes shared across all shards, so two devices
    /// drawn with overlapping parameters reuse each other's integrations.
    probes: ProbeCache,
    submitted: AtomicU64,
    completed: AtomicU64,
    dedup_hits: AtomicU64,
    compiles: AtomicU64,
    batches: AtomicU64,
    overloads: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The job engine. See the crate docs for the architecture; construction
/// spawns the worker pool, drop drains it (failing still-queued jobs with
/// [`ServiceError::ShutDown`]).
pub struct CompileService {
    inner: Arc<ServiceInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for CompileService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileService")
            .field("cfg", &self.inner.cfg)
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl CompileService {
    /// Starts a service: validates the config and spawns `workers`
    /// threads. Spawn failure tears down cleanly and returns
    /// [`ServiceError::Spawn`].
    pub fn new(cfg: ServiceConfig) -> Result<Self, ServiceError> {
        if cfg.queue_capacity == 0 {
            return Err(ServiceError::InvalidRequest(
                "queue_capacity must be at least 1".into(),
            ));
        }
        let mut cfg = cfg;
        cfg.batch_max = cfg.batch_max.max(1);
        let workers = cfg.workers;
        let inner = Arc::new(ServiceInner {
            cfg,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                // opclint: allow(unordered-iter): constructor of the lookup-only dedup index declared above.
                inflight: HashMap::new(),
                // opclint: allow(unordered-iter): constructor of the lookup-only result memo declared above.
                memo: HashMap::new(),
                memo_order: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            // opclint: allow(unordered-iter): constructor of the lookup-only shard index declared above.
            shards: Mutex::new(HashMap::new()),
            probes: ProbeCache::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            overloads: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker_inner = Arc::clone(&inner);
            let spawned = std::thread::Builder::new()
                .name(format!("opc-svc-{i}"))
                .spawn(move || worker_loop(&worker_inner));
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    let service = CompileService { inner, handles };
                    drop(service); // joins the workers already running
                    return Err(ServiceError::Spawn(e.to_string()));
                }
            }
        }
        Ok(CompileService { inner, handles })
    }

    /// Submits a job without blocking. Parse and validation errors come
    /// back immediately; a full queue returns
    /// [`ServiceError::Overloaded`]; otherwise the returned [`Ticket`]
    /// resolves when a worker (or [`CompileService::run_pending`])
    /// completes the computation.
    pub fn submit(&self, spec: JobSpec) -> Result<Ticket, ServiceError> {
        let job = self.resolve(spec)?;
        let key = job_key(
            &job.device,
            &job.circuit,
            job.mode,
            job.shots,
            job.seed,
            job.noisy,
        );
        let mut st = lock(&self.inner.state);
        if st.shutdown {
            return Err(ServiceError::ShutDown);
        }
        if self.inner.cfg.dedup {
            if let Some(out) = st.memo.get(&key) {
                self.inner.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Ticket {
                    slot: Arc::new(JobSlot::ready(Ok(Arc::clone(out)))),
                    key,
                    deduped: true,
                });
            }
            if let Some(slot) = st.inflight.get(&key) {
                self.inner.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Ticket {
                    slot: Arc::clone(slot),
                    key,
                    deduped: true,
                });
            }
        }
        if st.queue.len() >= self.inner.cfg.queue_capacity {
            self.inner.overloads.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded {
                capacity: self.inner.cfg.queue_capacity,
            });
        }
        let slot = Arc::new(JobSlot::empty());
        st.inflight.insert(key, Arc::clone(&slot));
        st.queue.push_back(Pending {
            key,
            job,
            slot: Arc::clone(&slot),
        });
        drop(st);
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        // `work_cv` has two waiter classes (idle workers, blocked
        // submitters); broadcast so a wakeup is never swallowed by the
        // wrong class.
        self.inner.work_cv.notify_all();
        Ok(Ticket {
            slot,
            key,
            deduped: false,
        })
    }

    /// [`CompileService::submit`] that waits out backpressure: when the
    /// queue is full it parks until a worker frees space instead of
    /// returning [`ServiceError::Overloaded`]. Other errors are
    /// immediate.
    pub fn submit_blocking(&self, spec: JobSpec) -> Result<Ticket, ServiceError> {
        loop {
            match self.submit(spec.clone()) {
                Err(ServiceError::Overloaded { .. }) => {
                    let st = lock(&self.inner.state);
                    if st.shutdown {
                        return Err(ServiceError::ShutDown);
                    }
                    if st.queue.len() >= self.inner.cfg.queue_capacity {
                        // Workers broadcast on `work_cv` after freeing
                        // queue space; wait for that signal.
                        drop(
                            self.inner
                                .work_cv
                                .wait(st)
                                .unwrap_or_else(|e| e.into_inner()),
                        );
                    }
                }
                other => return other,
            }
        }
    }

    /// Drains the queue on the calling thread until it is empty, using
    /// the same claim/batch/execute path as a worker. This is how a
    /// `workers: 0` service makes progress, and it lets tests drive the
    /// engine with fully deterministic interleaving. Returns the number
    /// of jobs completed.
    pub fn run_pending(&self) -> usize {
        let mut done = 0;
        while drain_one(&self.inner) {
            done += 1;
        }
        done
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            dedup_hits: self.inner.dedup_hits.load(Ordering::Relaxed),
            compiles: self.inner.compiles.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            overloads: self.inner.overloads.load(Ordering::Relaxed),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    /// Parses + validates a spec into the executable form. All untrusted
    /// input is rejected here, before the job consumes queue space.
    fn resolve(&self, spec: JobSpec) -> Result<ResolvedJob, ServiceError> {
        let cfg = &self.inner.cfg;
        let circuit = match spec.circuit {
            CircuitSource::Qasm(src) => qasm::parse(&src).map_err(ServiceError::Parse)?,
            CircuitSource::Ir(c) => c,
        };
        let n = circuit.num_qubits();
        if n == 0 {
            return Err(ServiceError::InvalidRequest("circuit has no qubits".into()));
        }
        if n > cfg.max_qubits {
            return Err(ServiceError::InvalidRequest(format!(
                "circuit uses {n} qubits; service limit is {}",
                cfg.max_qubits
            )));
        }
        let device_qubits = spec.device.num_qubits();
        if device_qubits < n {
            return Err(ServiceError::InvalidRequest(format!(
                "circuit uses {n} qubits but device `{}` has {device_qubits}",
                spec.device.kind.name()
            )));
        }
        if device_qubits > cfg.max_qubits {
            return Err(ServiceError::InvalidRequest(format!(
                "device width {device_qubits} exceeds service limit {}",
                cfg.max_qubits
            )));
        }
        if spec.shots == 0 || spec.shots > cfg.max_shots {
            return Err(ServiceError::InvalidRequest(format!(
                "shots must be in 1..={}, got {}",
                cfg.max_shots, spec.shots
            )));
        }
        if circuit
            .ops()
            .iter()
            .any(|op| op.gate.name().starts_with("qutrit"))
        {
            return Err(ServiceError::InvalidRequest(
                "qutrit subspace gates are not servable (no ideal qubit distribution)".into(),
            ));
        }
        Ok(ResolvedJob {
            device: spec.device,
            circuit,
            mode: spec.mode,
            shots: spec.shots,
            seed: spec.seed,
            noisy: spec.noisy,
        })
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        let abandoned: Vec<Pending> = {
            let mut st = lock(&self.inner.state);
            st.shutdown = true;
            st.queue.drain(..).collect()
        };
        self.inner.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        for pending in abandoned {
            let mut st = lock(&self.inner.state);
            st.inflight.remove(&pending.key);
            drop(st);
            pending.slot.fill(Err(ServiceError::ShutDown));
        }
    }
}

/// Worker thread body: block for work, then drain until the queue is
/// empty again.
fn worker_loop(inner: &ServiceInner) {
    loop {
        {
            let mut st = lock(&inner.state);
            loop {
                if st.shutdown {
                    return;
                }
                if !st.queue.is_empty() {
                    break;
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        while drain_one(inner) {}
    }
}

/// Claims one batch (a front job plus queued same-shard followers) and
/// executes it. Returns `false` when the queue was empty.
fn drain_one(inner: &ServiceInner) -> bool {
    let batch = {
        let mut st = lock(&inner.state);
        let Some(first) = st.queue.pop_front() else {
            return false;
        };
        let shard_key = first.job.device.shard_key();
        let mut batch = vec![first];
        let mut i = 0;
        while i < st.queue.len() && batch.len() < inner.cfg.batch_max {
            if st.queue[i].job.device.shard_key() == shard_key {
                if let Some(claimed) = st.queue.remove(i) {
                    batch.push(claimed);
                    continue;
                }
            }
            i += 1;
        }
        batch
    };
    // Queue space was freed; wake blocked submitters (and idle workers,
    // which simply re-check and sleep).
    inner.work_cv.notify_all();
    if batch.len() > 1 {
        inner.batches.fetch_add(1, Ordering::Relaxed);
    }
    let shard = shard_for(inner, &batch[0].job.device);
    for pending in batch {
        let result = execute(inner, &shard, &pending.job);
        inner.completed.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = lock(&inner.state);
            st.inflight.remove(&pending.key);
            if inner.cfg.dedup && inner.cfg.result_cache_entries > 0 {
                if let Ok(out) = &result {
                    if st.memo.insert(pending.key, Arc::clone(out)).is_none() {
                        st.memo_order.push_back(pending.key);
                    }
                    while st.memo_order.len() > inner.cfg.result_cache_entries {
                        if let Some(evicted) = st.memo_order.pop_front() {
                            st.memo.remove(&evicted);
                        }
                    }
                }
            }
        }
        pending.slot.fill(result);
    }
    true
}

/// Gets or builds the calibration shard for a device spec. The map lock
/// covers only the `Arc<Shard>` lookup; the expensive build runs inside
/// the shard's own `OnceLock`, so concurrent workers needing the same
/// device block on one tune-up instead of racing duplicates, while
/// workers on other shards proceed untouched.
fn shard_for(inner: &ServiceInner, spec: &DeviceSpec) -> Arc<Shard> {
    let key = spec.shard_key();
    let shard = {
        let mut shards = lock(&inner.shards);
        Arc::clone(shards.entry(key).or_insert_with(|| {
            Arc::new(Shard {
                data: OnceLock::new(),
            })
        }))
    };
    shard.data.get_or_init(|| {
        let (device, root) = spec.build();
        let calibration = Calibration::run_seeded_with(
            &device,
            &CalibrationOptions::default(),
            root,
            &CalStore::from_env(),
            &ShotPool::from_env(),
            &inner.probes,
        );
        ShardData {
            device,
            calibration,
        }
    });
    shard
}

/// Compile + execute + sample one job against its shard. Pure function of
/// `(shard data, job)`: randomness comes from the job's own seed streams,
/// so the result is independent of which worker runs it, when, and in
/// which batch.
fn execute(
    inner: &ServiceInner,
    shard: &Shard,
    job: &ResolvedJob,
) -> Result<Arc<JobOutput>, ServiceError> {
    let Some(data) = shard.data.get() else {
        // Unreachable: `shard_for` initializes before handing the shard
        // out. Kept as a typed error rather than an unwrap.
        return Err(ServiceError::InvalidRequest("shard not initialized".into()));
    };
    inner.compiles.fetch_add(1, Ordering::Relaxed);
    let compiled = Compiler::new(&data.device, &data.calibration, job.mode)
        .compile(&job.circuit)
        .map_err(|e| match e {
            pulse_compiler::LowerError::InvalidSchedule(findings) => ServiceError::Verify(findings),
            other => ServiceError::Compile(other.to_string()),
        })?;
    // Belt and braces: re-verify the compiled schedule here so the
    // service boundary rejects invalid work even when the in-compiler
    // pass is disabled via `OPC_VERIFY=0` in this process.
    let findings = quant_pulse::verify(&compiled.program.schedule, &data.device.verify_spec());
    if !findings.is_empty() {
        return Err(ServiceError::Verify(findings));
    }
    let executor = if job.noisy {
        PulseExecutor::new(&data.device)
    } else {
        PulseExecutor::noiseless(&data.device)
    };
    let mut rng = seeded(stream_seed(job.seed, EXEC_STREAM));
    let outcome = executor
        .try_run(&compiled.program, &mut rng)
        .map_err(ServiceError::Exec)?;
    let counts = outcome.sample_counts_deterministic(job.seed, job.shots);
    let ideal = job.circuit.output_distribution();
    let measured = counts_to_distribution(&counts);
    let fidelity = hellinger_fidelity(&ideal, &measured);
    let key = job_key(
        &job.device,
        &job.circuit,
        job.mode,
        job.shots,
        job.seed,
        job.noisy,
    );
    Ok(Arc::new(JobOutput {
        key,
        num_qubits: job.circuit.num_qubits(),
        assembly_qasm: qasm::print(&compiled.basis),
        duration_dt: compiled.duration(),
        pulse_count: compiled.pulse_count(),
        counts,
        fidelity,
        completed_tick: inner.cfg.clock.as_ref().map_or(0, |clock| clock()),
    }))
}
