//! Job specifications and their content-addressed keys.

use pulse_compiler::CompileMode;
use quant_circuit::{Circuit, Gate};
use quant_device::DeviceModel;
use quant_math::seeded;

/// Bumped whenever the service's execution semantics change, so stale
/// dedup keys from older algorithm versions can never alias new results
/// (mirrors `CAL_ALGO_VERSION` on calibration snapshots).
pub const SERVICE_ALGO_VERSION: u64 = 1;

/// Which simulated backend family a job targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// Single-qubit Armonk-like device (`qubits` must be 1).
    Armonk,
    /// Almaden-like line topology at the requested width.
    Almaden,
}

impl DeviceKind {
    /// Stable lower-case name (used by the wire protocol and CLI).
    pub fn name(&self) -> &'static str {
        match self {
            DeviceKind::Armonk => "armonk",
            DeviceKind::Almaden => "almaden",
        }
    }

    /// Parses [`DeviceKind::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "armonk" => Some(DeviceKind::Armonk),
            "almaden" => Some(DeviceKind::Almaden),
            _ => None,
        }
    }
}

/// A deterministic device description: kind + width + parameter-draw seed.
///
/// Two jobs with equal specs share one calibration shard; the spec is the
/// whole identity of the device (the model is rebuilt from it bit-for-bit
/// on any worker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Backend family.
    pub kind: DeviceKind,
    /// Register width (ignored for Armonk, which is always 1 qubit).
    pub qubits: u32,
    /// Seed for the device parameter draws *and* the calibration root.
    pub seed: u64,
}

impl DeviceSpec {
    /// Creates a spec.
    pub fn new(kind: DeviceKind, qubits: u32, seed: u64) -> Self {
        DeviceSpec { kind, qubits, seed }
    }

    /// The shard key: FNV-1a over the spec's identity. Equal specs — and
    /// only equal specs — land on the same calibration shard.
    pub fn shard_key(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, SERVICE_ALGO_VERSION);
        h = fnv1a(
            h,
            match self.kind {
                DeviceKind::Armonk => 1,
                DeviceKind::Almaden => 2,
            },
        );
        h = fnv1a(h, self.qubits as u64);
        fnv1a(h, self.seed)
    }

    /// Effective register width.
    pub fn num_qubits(&self) -> u32 {
        match self.kind {
            DeviceKind::Armonk => 1,
            DeviceKind::Almaden => self.qubits,
        }
    }

    /// Builds the device model and the calibration root seed. The RNG
    /// draw order matches the `opc` CLI (device parameters first, then
    /// one `u64` for the calibration root), so a service job on
    /// `(Almaden, n, seed)` sees exactly the device `opc --seed seed`
    /// builds.
    pub fn build(&self) -> (DeviceModel, u64) {
        use rand::Rng;
        let mut rng = seeded(self.seed);
        let device = match self.kind {
            DeviceKind::Armonk => DeviceModel::armonk_like(&mut rng),
            DeviceKind::Almaden => DeviceModel::almaden_like(self.qubits as usize, &mut rng),
        };
        let root = rng.gen::<u64>();
        (device, root)
    }
}

/// The program payload of a job.
#[derive(Clone, Debug, PartialEq)]
pub enum CircuitSource {
    /// OpenQASM 2.0 text (parsed — and rejected with a typed error — at
    /// submit time, before the job consumes queue space).
    Qasm(String),
    /// Already-constructed circuit IR.
    Ir(Circuit),
}

/// A compile+simulate request.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Target device.
    pub device: DeviceSpec,
    /// Program.
    pub circuit: CircuitSource,
    /// Compilation flow.
    pub mode: CompileMode,
    /// Measurement shots to sample.
    pub shots: usize,
    /// Root seed for execution randomness and shot sampling.
    pub seed: u64,
    /// Full noise model (`true`) or noiseless pulse physics (`false`).
    pub noisy: bool,
}

impl JobSpec {
    /// A QASM job with the service defaults: optimized flow, 4000 noisy
    /// shots, seed 7.
    pub fn qasm(device: DeviceSpec, source: impl Into<String>) -> Self {
        JobSpec {
            device,
            circuit: CircuitSource::Qasm(source.into()),
            mode: CompileMode::Optimized,
            shots: 4000,
            seed: 7,
            noisy: true,
        }
    }

    /// An IR job with the same defaults as [`JobSpec::qasm`].
    pub fn ir(device: DeviceSpec, circuit: Circuit) -> Self {
        JobSpec {
            device,
            circuit: CircuitSource::Ir(circuit),
            mode: CompileMode::Optimized,
            shots: 4000,
            seed: 7,
            noisy: true,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parameter words of a gate, by exact bit pattern (the same "floats enter
/// the key verbatim" rule the pulse cache uses — dedup must never equate
/// almost-equal angles).
fn gate_params(gate: &Gate) -> [u64; 3] {
    match *gate {
        Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::DirectRx(a) | Gate::Cr(a) | Gate::Zz(a) => {
            [a.to_bits(), 0, 0]
        }
        Gate::FSim(a, b) => [a.to_bits(), b.to_bits(), 0],
        Gate::U3(a, b, c) => [a.to_bits(), b.to_bits(), c.to_bits()],
        _ => [0, 0, 0],
    }
}

/// The content-addressed job key: FNV-1a over everything that can change
/// the result — algorithm version, device spec, compile mode, shot count,
/// execution seed, noise flag, and the full resolved op list (gate
/// mnemonic, exact parameter bits, operand qubits). Two submissions with
/// equal keys are the same computation and may share one result.
pub fn job_key(
    device: &DeviceSpec,
    circuit: &Circuit,
    mode: CompileMode,
    shots: usize,
    seed: u64,
    noisy: bool,
) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, SERVICE_ALGO_VERSION);
    h = fnv1a(h, device.shard_key());
    h = fnv1a(
        h,
        match mode {
            CompileMode::Standard => 1,
            CompileMode::Optimized => 2,
        },
    );
    h = fnv1a(h, shots as u64);
    h = fnv1a(h, seed);
    h = fnv1a(h, noisy as u64);
    h = fnv1a(h, circuit.num_qubits() as u64);
    h = fnv1a(h, circuit.len() as u64);
    for op in circuit.ops() {
        h = fnv1a_bytes(h, op.gate.name().as_bytes());
        for w in gate_params(&op.gate) {
            h = fnv1a(h, w);
        }
        for &q in &op.qubits {
            h = fnv1a(h, q as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        c
    }

    #[test]
    fn equal_jobs_share_a_key() {
        let d = DeviceSpec::new(DeviceKind::Almaden, 2, 7);
        let a = job_key(&d, &bell(), CompileMode::Optimized, 4000, 7, true);
        let b = job_key(&d, &bell(), CompileMode::Optimized, 4000, 7, true);
        assert_eq!(a, b);
    }

    #[test]
    fn every_field_discriminates() {
        let d = DeviceSpec::new(DeviceKind::Almaden, 2, 7);
        let base = job_key(&d, &bell(), CompileMode::Optimized, 4000, 7, true);
        let d2 = DeviceSpec::new(DeviceKind::Almaden, 2, 8);
        assert_ne!(
            base,
            job_key(&d2, &bell(), CompileMode::Optimized, 4000, 7, true)
        );
        assert_ne!(
            base,
            job_key(&d, &bell(), CompileMode::Standard, 4000, 7, true)
        );
        assert_ne!(
            base,
            job_key(&d, &bell(), CompileMode::Optimized, 4001, 7, true)
        );
        assert_ne!(
            base,
            job_key(&d, &bell(), CompileMode::Optimized, 4000, 8, true)
        );
        assert_ne!(
            base,
            job_key(&d, &bell(), CompileMode::Optimized, 4000, 7, false)
        );
        let mut other = bell();
        other.x(1);
        assert_ne!(
            base,
            job_key(&d, &other, CompileMode::Optimized, 4000, 7, true)
        );
    }

    #[test]
    fn parameter_bits_discriminate() {
        let d = DeviceSpec::new(DeviceKind::Almaden, 1, 7);
        let mut a = Circuit::new(1);
        a.rx(0, 0.5);
        let mut b = Circuit::new(1);
        b.rx(0, 0.5 + 1e-17);
        let ka = job_key(&d, &a, CompileMode::Optimized, 100, 7, true);
        let kb = job_key(&d, &b, CompileMode::Optimized, 100, 7, true);
        // 0.5 + 1e-17 rounds back to 0.5 in f64 — same bits, same key.
        assert_eq!(ka, kb);
        let mut c = Circuit::new(1);
        c.rx(0, 0.5000001);
        assert_ne!(ka, job_key(&d, &c, CompileMode::Optimized, 100, 7, true));
    }

    #[test]
    fn device_build_matches_width() {
        let (dev, _) = DeviceSpec::new(DeviceKind::Almaden, 3, 5).build();
        assert_eq!(dev.num_qubits(), 3);
        let (dev, _) = DeviceSpec::new(DeviceKind::Armonk, 1, 5).build();
        assert_eq!(dev.num_qubits(), 1);
    }
}
