//! Compilation-as-a-service: a batched, deduplicating, sharded job engine.
//!
//! The paper's premise is that pulse-level compilation pays off only when
//! the full compile→calibrate→execute loop is fast enough to run
//! per-program. This crate turns the workspace's compiler + simulator into
//! a request-level system: [`CompileService`] accepts compile+simulate
//! jobs (OpenQASM text or circuit IR in; compiled program summary +
//! sampled counts / duration / fidelity out) and sustains concurrent
//! traffic through four mechanisms:
//!
//! * **Bounded queue + worker pool.** Jobs wait in a FIFO queue drained by
//!   `workers` OS threads. A full queue rejects with
//!   [`ServiceError::Overloaded`] instead of growing without bound — the
//!   service never panics on load (building on the executor's
//!   `try_run → Result` path).
//! * **Content-addressed dedup.** Every job is keyed by an FNV-1a hash of
//!   its full semantic content (device spec, circuit ops, compile mode,
//!   shots, seed, noise flag — like the calibration `snapshot_key`).
//!   A job identical to one already in flight coalesces onto the same
//!   computation; a job identical to a recently completed one is answered
//!   from a bounded result memo without queueing at all.
//! * **Per-device calibration shards.** The expensive per-device state
//!   (the [`DeviceModel`](quant_device::DeviceModel) and its
//!   [`Calibration`](quant_device::Calibration)) is built once per device
//!   spec in a shard keyed like the jobs. Shard construction goes through
//!   a `OnceLock`, so no two workers ever recalibrate the same device —
//!   late arrivals block on the one in-progress tune-up and then share it
//!   (which also shares the device's pulse cache across all jobs on that
//!   shard).
//! * **Same-device batching.** A worker that pops a job also claims up to
//!   `batch_max - 1` more queued jobs for the *same* device shard, so a
//!   burst of traffic against one device amortizes the shard lookup and
//!   keeps its caches hot instead of interleaving devices across workers.
//!
//! **Determinism contract.** Every job's result is a pure function of its
//! spec: execution randomness comes from `seeded(stream_seed(job.seed,
//! EXEC_STREAM))`, sampling from `sample_counts_deterministic(job.seed,
//! shots)`, and shard state from the device spec alone. Scheduling,
//! batching and worker count therefore cannot change any output —
//! results are bit-identical at any `workers` setting for a fixed spec,
//! the same contract `ShotPool` gives shot fan-out.
//!
//! ```
//! use quant_service::{CompileService, DeviceKind, DeviceSpec, JobSpec, ServiceConfig};
//!
//! let service = CompileService::new(ServiceConfig {
//!     workers: 2,
//!     ..ServiceConfig::default()
//! })
//! .unwrap();
//! let ticket = service
//!     .submit(JobSpec::qasm(
//!         DeviceSpec::new(DeviceKind::Almaden, 2, 7),
//!         "qreg q[2]; h q[0]; cx q[0], q[1];",
//!     ))
//!     .unwrap();
//! let out = ticket.wait().unwrap();
//! assert_eq!(out.counts.iter().sum::<u64>(), 4000);
//! ```

mod service;
mod spec;
pub mod wire;

pub use service::{CompileService, JobOutput, ServiceConfig, ServiceError, StatsSnapshot, Ticket};
pub use spec::{job_key, CircuitSource, DeviceKind, DeviceSpec, JobSpec, SERVICE_ALGO_VERSION};
