//! Performance suite: wall-clock timing of compile+execute workloads.
//!
//! ```text
//! cargo run --release -p repro-bench --bin perfsuite [-- --smoke]
//! ```
//!
//! Times a figure-4-class single-gate workload, reduced-shot figure-12 and
//! figure-13 workloads (serial and pooled), the device tune-up itself
//! (cold at 1 and N threads, plus a warm snapshot load), the
//! density-matrix stride kernels against their embed-based reference on
//! 2–6 qubit registers, the trajectory executor on 8–20-qubit QAOA layers
//! (retained serial-naive reference vs the unfused stride-kernel path at
//! 1 and N threads, past the `O(4ⁿ)` density wall, plus `fusion_n{n}`
//! rows timing the gate-fusion plan-replay route against the unfused
//! kernel baseline — with a fatal fused-vs-reference count-checksum gate
//! at a fixed root), the 20-qubit QAOA headline both unfused
//! (`qaoa20_trajectory_workload`, comparable to earlier BENCH files) and
//! fused (`qaoa20_trajectory_fused`, whose `speedup` column is the
//! fusion win), the propagator hot loop
//! (eigendecomposition reference vs the Taylor scratch used by the
//! integrators), a θ-sweep with the pulse cache off vs on, and the
//! compile service under a mixed concurrent job stream at 1..N workers
//! (`service_throughput`: `shots_per_s` is jobs/sec there, with
//! `p50_ms`/`p99_ms` latency and `dedup_hit_rate` extras, and a fatal
//! cross-worker-count checksum check), and the generated benchmark
//! corpus end-to-end on both pools with a fatal cross-pool checksum
//! check (`corpus_full`, plus per-family `corpus_<family>` rows whose
//! `speedup` is the gate-over-pulse schedule-duration ratio). Results —
//! `workload`, `threads`, `wall_ms`, `shots_per_s`, `speedup` (vs the
//! workload's own baseline row) — are written to `BENCH_7.json`.
//!
//! Pooled workloads are always recorded at 1 thread *and* at a scaling
//! thread count (≥ 2 even on a single-core host, so the fan-out machinery
//! is exercised); the determinism tests guarantee the numbers themselves
//! are identical at any thread count.
//!
//! Every `Setup` a figure row needs is constructed once before timing, so
//! the calibration snapshot store is warm and the figure rows measure
//! compile+execute — the tune-up wall has its own dedicated rows
//! (`fig12_setup_calibration`, timed with the snapshot store disabled, and
//! `calibration_warm_load`, timed against a freshly persisted store).
//!
//! `--smoke` runs every workload at tiny sizes and writes
//! `BENCH_smoke.json` — a CI-speed check that the suite runs end-to-end
//! and emits valid JSON, not a measurement.

use pulse_compiler::{CompileMode, Compiler};
use quant_algos::{molecules, trotter, vqe, LineGraph};
use quant_char::rb_sequence;
use quant_circuit::Circuit;
use quant_device::{
    CalStore, Calibration, CalibrationOptions, DeviceModel, LoweredProgram, ProbeCache,
    PulseExecutor, ShotPool, TrajectoryExecutor, DT,
};
use quant_math::{seeded, unitary_exp, CMat, PropagatorScratch, C64};
use quant_service::{CompileService, DeviceKind, DeviceSpec, JobSpec, ServiceConfig};
use quant_sim::{channels, gates, DensityMatrix, KernelScratch};
use rand::Rng;
use repro_bench::{compare_flows, json, qaoa_line_circuit, timing::time_best, Setup};
use std::sync::Arc;
use std::time::Instant;

struct Entry {
    workload: String,
    threads: usize,
    wall_ms: f64,
    shots_per_s: f64,
    speedup: f64,
    /// Extra numeric fields some workloads report (e.g. the service rows'
    /// latency percentiles); emitted verbatim into the JSON object.
    extra: Vec<(&'static str, f64)>,
}

fn record(
    entries: &mut Vec<Entry>,
    workload: impl Into<String>,
    threads: usize,
    wall_ms: f64,
    shots: usize,
    baseline_ms: f64,
) {
    let entry = Entry {
        workload: workload.into(),
        threads,
        wall_ms,
        shots_per_s: shots as f64 / (wall_ms / 1e3),
        speedup: baseline_ms / wall_ms,
        extra: Vec::new(),
    };
    println!(
        "{:<28} threads={:<2} {:>10.1} ms {:>12.0} shots/s {:>6.2}x",
        entry.workload, entry.threads, entry.wall_ms, entry.shots_per_s, entry.speedup
    );
    entries.push(entry);
}

/// Figure-4 class: compile the X gate both ways and execute noiselessly,
/// `reps` times. One compile+execute+sample pass is sub-millisecond now
/// that the tune-up loads from the snapshot store, so the repetition count
/// is what lifts the row above the timer's noise floor.
fn fig04_workload(pool: &ShotPool, shots: usize, reps: usize) -> usize {
    let setup = Setup::almaden(1, 404);
    let mut c = Circuit::new(1);
    c.x(0);
    for _ in 0..reps {
        for mode in [CompileMode::Standard, CompileMode::Optimized] {
            let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
                .compile(&c)
                .unwrap();
            let exec = PulseExecutor::noiseless(&setup.device);
            let out = exec.run(&compiled.program, &mut seeded(1));
            std::hint::black_box(pool.sample_counts(&out.probabilities, shots, 404));
        }
    }
    reps * 2 * shots
}

/// Figure-12 class at reduced shots: three benchmarks through both flows.
fn fig12_workload(pool: &ShotPool, benchmarks: &[(Circuit, usize)], shots: usize) -> usize {
    let comparisons = pool.map(benchmarks, |i, (circuit, n)| {
        let setup = Setup::almaden(*n, 1000 + i as u64);
        compare_flows(&setup, circuit, shots, 2000 + i as u64)
    });
    std::hint::black_box(comparisons);
    benchmarks.len() * 2 * shots
}

/// Figure-13 class at reduced shots: RB cells through both compile modes.
fn fig13_workload(pool: &ShotPool, shots: usize) -> usize {
    let setup = Setup::armonk(1313);
    let lengths = [20usize, 40, 60];
    let randomizations = 2;
    let exec = PulseExecutor::new(&setup.device);
    for mode in [CompileMode::Standard, CompileMode::Optimized] {
        let cells = pool.map_indices(lengths.len() * randomizations, |j| {
            let k = lengths[j / randomizations];
            let r = j % randomizations;
            let mut rng = seeded(5000 + (k * 31 + r) as u64);
            let c = rb_sequence(k, &mut rng);
            let program = Compiler::new(&setup.device, &setup.calibration, mode)
                .compile(&c)
                .unwrap()
                .program;
            let out = exec.run(&program, &mut rng);
            out.sample_counts(&mut rng, shots)[0]
        });
        std::hint::black_box(cells);
    }
    lengths.len() * randomizations * 2 * shots
}

/// The executor hot loop in miniature: per round, a 1-qubit Kraus channel
/// on every qubit, a 2-qubit gate on every adjacent pair, and a coalesced
/// thermal-relaxation channel on every qubit — via the stride kernels or
/// the embed-based reference. Returns the number of operator applications.
fn density_kernel_workload(n: usize, reference: bool, rounds: usize) -> usize {
    let dims = vec![2usize; n];
    let mut rho = DensityMatrix::zero(&dims);
    let mut scratch = KernelScratch::new();
    let gate1 = channels::amplitude_damping(0.003);
    let gate2 = gates::cnot();
    let relax = channels::thermal_relaxation_kraus(50e-9, 80e-6, 70e-6);
    let mut ops = 0usize;
    for round in 0..rounds {
        for q in 0..n {
            if reference {
                rho.apply_kraus_ref(&gate1, &[q]);
            } else {
                rho.apply_kraus_scratch(&gate1, &[q], &mut scratch);
            }
        }
        for q in 0..n - 1 {
            let pair = if round % 2 == 0 {
                [q, q + 1]
            } else {
                [q + 1, q]
            };
            if reference {
                rho.apply_unitary_ref(&gate2, &pair);
            } else {
                rho.apply_unitary_scratch(&gate2, &pair, &mut scratch);
            }
        }
        for q in 0..n {
            if reference {
                rho.apply_kraus_ref(&relax, &[q]);
            } else {
                rho.apply_kraus_scratch(&relax, &[q], &mut scratch);
            }
        }
        ops += 3 * n - 1;
    }
    std::hint::black_box(rho.trace());
    ops
}

/// The trajectory executor on a textbook-compiled (CNOT·Rz·CNOT) QAOA
/// line-graph layer: `trajectories` stochastic state-vector runs with
/// `shots` outcomes spread across them — the workload class the `O(4ⁿ)`
/// density wall keeps away from the density-matrix executor. `naive`
/// selects the retained reference route (skip-scan state-vector kernels,
/// per-sample pulse integration, clone-per-branch channel sampling and an
/// `O(2ⁿ)` categorical scan per shot); the fast route runs stride kernels,
/// run-compressed stack-array integration, in-place branch weighing and
/// binary-search sampling on a per-trajectory cumulative distribution.
#[derive(Clone, Copy, PartialEq)]
enum TrajRoute {
    /// Retained reference route: skip-scan kernels, per-sample pulse
    /// integration, clone-per-branch channel sampling.
    Reference,
    /// Unfused stride-kernel path (`OPC_FUSION=0`).
    Kernel,
    /// Gate-fusion plan-replay path (`OPC_FUSION=1`).
    Fused,
}

/// Runs the workload once and returns the counts (fixed root 41, so every
/// route must agree bit-for-bit; the fusion rows assert it).
fn trajectory_counts(
    program: &LoweredProgram,
    device: &DeviceModel,
    trajectories: usize,
    shots: usize,
    route: TrajRoute,
    pool: &ShotPool,
) -> Vec<u64> {
    let exec = TrajectoryExecutor::new(device, trajectories);
    let exec = match route {
        TrajRoute::Reference => exec.with_reference_path(),
        TrajRoute::Kernel => exec.with_fusion(false),
        TrajRoute::Fused => exec.with_fusion(true),
    };
    match exec.try_run_pooled(program, shots, 41, pool) {
        Ok(counts) => counts,
        Err(e) => die(format_args!("trajectory workload failed: {e}")),
    }
}

fn trajectory_workload(
    program: &LoweredProgram,
    device: &DeviceModel,
    trajectories: usize,
    shots: usize,
    route: TrajRoute,
    pool: &ShotPool,
) -> usize {
    std::hint::black_box(trajectory_counts(
        program,
        device,
        trajectories,
        shots,
        route,
        pool,
    ));
    shots
}

/// The service throughput workload's job mix: several distinct jobs per
/// device spec, each submitted `copies` times, so the stream exercises
/// batching (same-device runs), sharding (three devices) and dedup
/// (identical copies coalesce). Returned in submission order.
fn service_job_mix(smoke: bool) -> Vec<JobSpec> {
    let copies = 3;
    let shots = if smoke { 200 } else { 1000 };
    let mut distinct: Vec<JobSpec> = Vec::new();
    let angles = if smoke { 2 } else { 8 };
    for k in 1..=angles {
        let src = format!("qreg q[1]; rx({}*pi/{angles}) q[0];", k);
        let mut job = JobSpec::qasm(DeviceSpec::new(DeviceKind::Armonk, 1, 42), src);
        job.shots = shots;
        distinct.push(job);
    }
    let two_q = if smoke { 1 } else { 7 };
    for k in 0..two_q {
        let src = format!("qreg q[2]; h q[0]; cx q[0], q[1]; rz({}*pi/8) q[1];", k + 1);
        let mut job = JobSpec::qasm(DeviceSpec::new(DeviceKind::Almaden, 2, 43), src);
        job.shots = shots;
        distinct.push(job);
    }
    if !smoke {
        for k in 0..6 {
            let src = format!(
                "qreg q[3]; h q[0]; cx q[0], q[1]; cx q[1], q[2]; rx({}*pi/7) q[2];",
                k + 1
            );
            let mut job = JobSpec::qasm(DeviceSpec::new(DeviceKind::Almaden, 3, 44), src);
            job.shots = shots;
            distinct.push(job);
        }
    }
    // Interleave the copies (a, b, c, a, b, c, …) so duplicates arrive
    // while their first submission is typically still in flight.
    let mut jobs = Vec::with_capacity(distinct.len() * copies);
    for _ in 0..copies {
        jobs.extend(distinct.iter().cloned());
    }
    jobs
}

/// Runs the job mix through a fresh `CompileService` at `workers` worker
/// threads, returning `(wall_ms, p50_ms, p99_ms, dedup_rate, checksum)`.
/// The checksum folds every output's counts and fidelity bits in
/// submission order; the caller asserts it is identical at every worker
/// count (the service determinism contract).
fn service_throughput_run(jobs: &[JobSpec], workers: usize) -> (f64, f64, f64, f64, u64) {
    let t0 = Instant::now();
    let clock: Arc<dyn Fn() -> u64 + Send + Sync> =
        Arc::new(move || t0.elapsed().as_micros() as u64);
    let service = match CompileService::new(ServiceConfig {
        workers,
        queue_capacity: 64,
        clock: Some(clock),
        ..ServiceConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => die(format_args!("service start failed: {e}")),
    };
    // Warm the calibration shards outside the timed window: the tune-up
    // wall has its own perfsuite rows, and these rows measure the
    // request path (queue, dedup, compile, execute, sample).
    let mut seen = Vec::new();
    for job in jobs {
        if !seen.contains(&job.device) {
            seen.push(job.device);
            let mut warm = job.clone();
            warm.shots = 1;
            match service.submit(warm) {
                Ok(ticket) => {
                    if let Err(e) = ticket.wait() {
                        die(format_args!("shard warm-up failed: {e}"));
                    }
                }
                Err(e) => die(format_args!("shard warm-up failed: {e}")),
            }
        }
    }

    // Ticks are on the service clock (since `t0`); submissions are on the
    // post-warm-up timer. `base_tick` rebases completions onto the timer.
    let base_tick = t0.elapsed().as_micros() as u64;
    let timer = Instant::now();
    let mut tickets = Vec::with_capacity(jobs.len());
    for job in jobs {
        let submit_tick = timer.elapsed().as_micros() as u64;
        match service.submit_blocking(job.clone()) {
            Ok(ticket) => tickets.push((submit_tick, ticket)),
            Err(e) => die(format_args!("service submit failed: {e}")),
        }
    }
    let mut latencies_us = Vec::with_capacity(tickets.len());
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |w: u64| {
        for byte in w.to_le_bytes() {
            checksum ^= byte as u64;
            checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (submit_tick, ticket) in tickets {
        let out = match ticket.wait() {
            Ok(out) => out,
            Err(e) => die(format_args!("service job failed: {e}")),
        };
        let completed = out.completed_tick.saturating_sub(base_tick);
        latencies_us.push(completed.saturating_sub(submit_tick));
        fold(out.duration_dt);
        fold(out.fidelity.to_bits());
        for &c in &out.counts {
            fold(c);
        }
    }
    let wall_ms = timer.elapsed().as_secs_f64() * 1e3;
    latencies_us.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_us.len() - 1) as f64 * p).round() as usize;
        latencies_us[idx.min(latencies_us.len() - 1)] as f64 / 1e3
    };
    let stats = service.stats();
    let dedup_rate = stats.dedup_hits as f64 / (stats.dedup_hits + stats.submitted).max(1) as f64;
    (wall_ms, pct(0.50), pct(0.99), dedup_rate, checksum)
}

/// Reports a fatal workload error and exits nonzero — a benchmark binary
/// has no caller to hand a `Result` to, and a clean diagnostic beats a
/// panic backtrace.
fn die(msg: std::fmt::Arguments<'_>) -> ! {
    eprintln!("perfsuite: {msg}");
    std::process::exit(1);
}

/// Compiles the fixed-angle QAOA layer for the trajectory rows. The angles
/// are held constant (instead of `solve_p1`-optimized) so the setup stays
/// polynomial at 12–20 qubits; Standard mode keeps the echoed-CR `cx`
/// schedules the paper's Fig. 2 flow lowers to.
fn trajectory_program(setup: &Setup, n: usize, mode: CompileMode) -> LoweredProgram {
    let circuit = qaoa_line_circuit(n, Some((0.7, 0.42)));
    match Compiler::new(&setup.device, &setup.calibration, mode).compile(&circuit) {
        Ok(compiled) => compiled.program,
        Err(e) => die(format_args!("compile QAOA-{n} layer failed: {e:?}")),
    }
}

/// The per-sample propagator hot loop, via the eigendecomposition
/// reference or the allocation-free Taylor scratch the integrators use.
fn propagator_workload(taylor: bool, samples: usize) {
    // A transmon-like 3×3 drive Hamiltonian at the integrator's step norm.
    let mut h = CMat::zeros(3, 3);
    h[(0, 1)] = C64::new(0.9e9, 0.2e9);
    h[(1, 0)] = C64::new(0.9e9, -0.2e9);
    h[(1, 2)] = C64::new(1.2e9, -0.3e9);
    h[(2, 1)] = C64::new(1.2e9, 0.3e9);
    h[(2, 2)] = C64::real(-2.0e9);
    let mut scratch = PropagatorScratch::new(3);
    let mut out = CMat::zeros(3, 3);
    let mut acc = C64::ZERO;
    for k in 0..samples {
        let t = DT * (1.0 + (k % 7) as f64 * 1e-3);
        if taylor {
            scratch.unitary_exp_into(&h, t, &mut out);
            acc += out.trace();
        } else {
            acc += unitary_exp(&h, t).trace();
        }
    }
    std::hint::black_box(acc);
}

/// An Rx(θ) sweep repeated `repeats` times on precompiled programs; with
/// the cache on, every pulse after the first sweep is a lookup instead of
/// an integration.
fn theta_sweep_workload(
    setup: &Setup,
    programs: &[quant_device::LoweredProgram],
    repeats: usize,
    cache: bool,
    shots: usize,
) -> usize {
    setup.device.set_pulse_cache_enabled(cache);
    setup.device.pulse_cache().invalidate();
    let exec = PulseExecutor::noiseless(&setup.device);
    for _ in 0..repeats {
        for (i, program) in programs.iter().enumerate() {
            let out = exec.run(program, &mut seeded(505 ^ i as u64));
            std::hint::black_box(out.sample_counts_deterministic(505 ^ i as u64, shots));
        }
    }
    setup.device.set_pulse_cache_enabled(true);
    repeats * programs.len() * shots
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut entries = Vec::new();
    // The scaling pool is ≥ 2 threads even on a single-core host: the
    // point of the N-thread row is to exercise (and time) the fan-out
    // machinery, not to claim a speedup the hardware cannot give.
    let env_pool = ShotPool::from_env();
    let pool = if env_pool.threads() > 1 {
        env_pool
    } else {
        ShotPool::new(2)
    };
    let serial = ShotPool::serial();
    println!(
        "perfsuite{} — compile+execute wall clock (scaling rows at {} thread(s))\n",
        if smoke { " [smoke]" } else { "" },
        pool.threads()
    );

    // fig04-class, serial then pooled. Best-of-3: the workload is a few
    // hundred milliseconds of compile+sample, where single draws swing
    // enough on a shared VM to misstate a ~1.0× ratio as a regression.
    let shots4 = if smoke { 200 } else { 10_000 };
    let reps4 = if smoke { 2 } else { 100 };
    let best4 = if smoke { 1 } else { 3 };
    std::hint::black_box(Setup::almaden(1, 404)); // warm the snapshot store
    let (n, serial_ms) = time_best(best4, || fig04_workload(&serial, shots4, reps4));
    record(
        &mut entries,
        "fig04_compile_execute",
        1,
        serial_ms,
        n,
        serial_ms,
    );
    let (n, ms) = time_best(best4, || fig04_workload(&pool, shots4, reps4));
    record(
        &mut entries,
        "fig04_compile_execute",
        pool.threads(),
        ms,
        n,
        serial_ms,
    );

    // fig12-class, reduced shots, serial then pooled.
    let benchmarks: Vec<(Circuit, usize)> = vec![
        (
            {
                let m = molecules::h2();
                let r = vqe::solve(&m.hamiltonian);
                vqe::ucc_ansatz(r.theta)
            },
            2,
        ),
        (
            {
                let g = LineGraph::new(4);
                let ((gamma, beta), _) = g.solve_p1();
                g.qaoa_circuit(&[(gamma, beta)])
            },
            4,
        ),
        (
            trotter::trotter_circuit(&molecules::water().hamiltonian, 3.0, 6),
            2,
        ),
    ];
    let shots12 = if smoke { 50 } else { 2000 };
    for (i, (_, n)) in benchmarks.iter().enumerate() {
        std::hint::black_box(Setup::almaden(*n, 1000 + i as u64)); // warm snapshots
    }
    let best12 = if smoke { 1 } else { 3 };
    let (n, serial_ms) = time_best(best12, || fig12_workload(&serial, &benchmarks, shots12));
    record(&mut entries, "fig12_reduced", 1, serial_ms, n, serial_ms);
    let (n, ms) = time_best(best12, || fig12_workload(&pool, &benchmarks, shots12));
    record(
        &mut entries,
        "fig12_reduced",
        pool.threads(),
        ms,
        n,
        serial_ms,
    );

    // The tune-up wall itself: the three `fig12_workload` device
    // calibrations (same seeds, same RNG draw order as `Setup::almaden`),
    // timed **cold** — snapshot store disabled — serial and fanned out,
    // then **warm** — loaded back from a freshly persisted store. The
    // speedup column of the warm row is warm-load vs cold-serial.
    let cold_setups = |pool: &ShotPool, store: &CalStore| {
        for (i, (_, n)) in benchmarks.iter().enumerate() {
            let mut rng = seeded(1000 + i as u64);
            let device = DeviceModel::almaden_like(*n, &mut rng);
            let root = rng.gen::<u64>();
            std::hint::black_box(Calibration::run_seeded_with(
                &device,
                &CalibrationOptions::default(),
                root,
                store,
                pool,
                &ProbeCache::with_enabled(true),
            ));
        }
        benchmarks.len()
    };
    let disabled = CalStore::disabled();
    let best_cold = if smoke { 1 } else { 2 };
    let (n, cold_serial_ms) = time_best(best_cold, || cold_setups(&serial, &disabled));
    record(
        &mut entries,
        "fig12_setup_calibration",
        1,
        cold_serial_ms,
        n,
        cold_serial_ms,
    );
    let (n, ms) = time_best(best_cold, || cold_setups(&pool, &disabled));
    record(
        &mut entries,
        "fig12_setup_calibration",
        pool.threads(),
        ms,
        n,
        cold_serial_ms,
    );
    let warm_dir = std::env::temp_dir().join(format!("opc-cal-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&warm_dir);
    let warm_store = CalStore::at(&warm_dir);
    cold_setups(&serial, &warm_store); // persist the three snapshots
    let (n, warm_ms) = time_best(if smoke { 1 } else { 5 }, || {
        cold_setups(&serial, &warm_store)
    });
    record(
        &mut entries,
        "calibration_warm_load",
        1,
        warm_ms,
        n,
        cold_serial_ms,
    );
    let _ = std::fs::remove_dir_all(&warm_dir);

    // fig13-class, reduced shots, serial then pooled.
    let shots13 = if smoke { 50 } else { 2000 };
    std::hint::black_box(Setup::armonk(1313)); // warm the snapshot store
    let best13 = if smoke { 1 } else { 3 };
    let (n, serial_ms) = time_best(best13, || fig13_workload(&serial, shots13));
    record(&mut entries, "fig13_reduced", 1, serial_ms, n, serial_ms);
    let (n, ms) = time_best(best13, || fig13_workload(&pool, shots13));
    record(
        &mut entries,
        "fig13_reduced",
        pool.threads(),
        ms,
        n,
        serial_ms,
    );

    // Density-matrix stride kernels vs the embed reference, on growing
    // registers. Rounds shrink with n so the reference side stays
    // tractable (its per-op cost grows as the cube of the dimension).
    for n in 2..=6usize {
        let rounds = if smoke {
            1
        } else {
            600 >> (2 * (n - 2)).min(9)
        };
        let rounds = rounds.max(1);
        let (ops, ref_ms) = time_best(if smoke { 1 } else { 3 }, || {
            density_kernel_workload(n, true, rounds)
        });
        record(
            &mut entries,
            format!("density_n{n}_embed_ref"),
            1,
            ref_ms,
            ops,
            ref_ms,
        );
        let (ops, ms) = time_best(if smoke { 1 } else { 3 }, || {
            density_kernel_workload(n, false, rounds)
        });
        record(
            &mut entries,
            format!("density_n{n}_stride"),
            1,
            ms,
            ops,
            ref_ms,
        );
    }

    // Trajectory scaling past the density wall: the same QAOA layer from
    // 8 to 20 qubits (a 20-qubit density matrix would need 2⁴⁰ complex
    // entries — 16 TiB). Serial-naive is the retained reference route; the
    // kernel path is recorded at 1 thread and at the scaling pool. The
    // determinism tests guarantee all three rows produce bit-identical
    // counts, so the ratio is pure execution cost.
    let traj_sizes: &[(usize, usize, usize)] = if smoke {
        &[(3, 2, 50)]
    } else {
        &[(8, 8, 1024), (12, 8, 1024), (16, 4, 512), (20, 2, 128)]
    };
    for &(n, trajectories, shots) in traj_sizes {
        let setup = Setup::almaden(n, 7_000 + n as u64);
        let program = trajectory_program(&setup, n, CompileMode::Standard);
        let best = if smoke || n >= 16 { 1 } else { 2 };
        let (s, naive_ms) = time_best(best, || {
            trajectory_workload(
                &program,
                &setup.device,
                trajectories,
                shots,
                TrajRoute::Reference,
                &serial,
            )
        });
        record(
            &mut entries,
            format!("trajectory_n{n}_serial_naive"),
            1,
            naive_ms,
            s,
            naive_ms,
        );
        let (s, kernel_ms) = time_best(best, || {
            trajectory_workload(
                &program,
                &setup.device,
                trajectories,
                shots,
                TrajRoute::Kernel,
                &serial,
            )
        });
        record(
            &mut entries,
            format!("trajectory_n{n}_kernel"),
            1,
            kernel_ms,
            s,
            naive_ms,
        );
        let (s, ms) = time_best(best, || {
            trajectory_workload(
                &program,
                &setup.device,
                trajectories,
                shots,
                TrajRoute::Kernel,
                &pool,
            )
        });
        record(
            &mut entries,
            format!("trajectory_n{n}_kernel"),
            pool.threads(),
            ms,
            s,
            naive_ms,
        );
        // Gate fusion vs the unfused kernel path on the same layer: the
        // `speedup` column is the fusion win. Before timing, gate on
        // correctness once per suite (n = 12 full, the smoke size in
        // smoke mode): the fused and reference routes must produce the
        // same counts at the fixed root — checksum divergence is fatal,
        // not a slow row. (n = 20 reference runs take minutes; the
        // determinism test suite pins the contract at every size class.)
        if n == 12 || smoke {
            let fused = trajectory_counts(
                &program,
                &setup.device,
                trajectories,
                shots,
                TrajRoute::Fused,
                &serial,
            );
            let reference = trajectory_counts(
                &program,
                &setup.device,
                trajectories,
                shots,
                TrajRoute::Reference,
                &serial,
            );
            let (a, b) = (
                quant_corpus::report::counts_checksum(&fused),
                quant_corpus::report::counts_checksum(&reference),
            );
            if a != b {
                die(format_args!(
                    "fused counts diverged from the reference path at n={n}, \
                     root 41 ({a:016x} vs {b:016x})"
                ));
            }
        }
        let (s, ms) = time_best(best, || {
            trajectory_workload(
                &program,
                &setup.device,
                trajectories,
                shots,
                TrajRoute::Fused,
                &serial,
            )
        });
        record(&mut entries, format!("fusion_n{n}"), 1, ms, s, kernel_ms);
        let (s, ms) = time_best(best, || {
            trajectory_workload(
                &program,
                &setup.device,
                trajectories,
                shots,
                TrajRoute::Fused,
                &pool,
            )
        });
        record(
            &mut entries,
            format!("fusion_n{n}"),
            pool.threads(),
            ms,
            s,
            kernel_ms,
        );
    }

    // The paper-class 20-qubit workload end to end: the optimized-flow
    // QAOA MAXCUT layer at Almaden scale, a trajectory ensemble deep
    // enough to sample from. `qaoa20_trajectory_workload` stays on the
    // unfused kernel route (comparable with earlier BENCH files; `speedup`
    // is 1.0 by construction) and the `qaoa20_trajectory_fused` rows time
    // gate fusion against it — their `speedup` column is the headline
    // fusion win.
    if !smoke {
        let setup = Setup::almaden(20, 7_020);
        let program = trajectory_program(&setup, 20, CompileMode::Optimized);
        let (s, unfused_ms) = time_best(1, || {
            trajectory_workload(&program, &setup.device, 8, 2048, TrajRoute::Kernel, &pool)
        });
        record(
            &mut entries,
            "qaoa20_trajectory_workload",
            pool.threads(),
            unfused_ms,
            s,
            unfused_ms,
        );
        let (s, ms) = time_best(1, || {
            trajectory_workload(&program, &setup.device, 8, 2048, TrajRoute::Fused, &serial)
        });
        record(
            &mut entries,
            "qaoa20_trajectory_fused",
            1,
            ms,
            s,
            unfused_ms,
        );
        let (s, ms) = time_best(1, || {
            trajectory_workload(&program, &setup.device, 8, 2048, TrajRoute::Fused, &pool)
        });
        record(
            &mut entries,
            "qaoa20_trajectory_fused",
            pool.threads(),
            ms,
            s,
            unfused_ms,
        );
    }

    // Propagator hot loop: eigendecomposition reference vs Taylor scratch.
    // Best-of-5 on both sides — single runs swing ~25 % on a shared VM and
    // a single noisy draw would misstate the hot-loop ratio.
    let samples = if smoke { 2_000 } else { 200_000 };
    let best_of = if smoke { 1 } else { 5 };
    let (_, eigh_ms) = time_best(best_of, || propagator_workload(false, samples));
    record(
        &mut entries,
        "propagator_eigh_reference",
        1,
        eigh_ms,
        samples,
        eigh_ms,
    );
    let (_, taylor_ms) = time_best(best_of, || propagator_workload(true, samples));
    record(
        &mut entries,
        "propagator_taylor_scratch",
        1,
        taylor_ms,
        samples,
        eigh_ms,
    );

    // Pulse cache: repeated θ sweeps, cache off vs on. The 1-qubit
    // DirectRx sweep bounds the cache's win by the non-integration
    // overhead; the 2-qubit Rx(θ)+CNOT sweep is fig12-class — the 9×9
    // echoed-CR integration dominates, so memoizing it is the headline.
    let shots_sweep = if smoke { 100 } else { 1000 };
    let points = if smoke { 5 } else { 41 };
    let setup = Setup::almaden(1, 505);
    let programs: Vec<_> = (1..=points)
        .map(|k| {
            let mut c = Circuit::new(1);
            c.rx(0, k as f64 / points as f64 * std::f64::consts::PI);
            Compiler::new(&setup.device, &setup.calibration, CompileMode::Optimized)
                .compile(&c)
                .unwrap()
                .program
        })
        .collect();
    let repeats = if smoke { 2 } else { 12 };
    let (n, off_ms) = time_best(if smoke { 1 } else { 3 }, || {
        theta_sweep_workload(&setup, &programs, repeats, false, shots_sweep)
    });
    record(
        &mut entries,
        "theta_sweep_1q_cache_off",
        1,
        off_ms,
        n,
        off_ms,
    );
    let (n, ms) = time_best(if smoke { 1 } else { 3 }, || {
        theta_sweep_workload(&setup, &programs, repeats, true, shots_sweep)
    });
    record(&mut entries, "theta_sweep_1q_cache_on", 1, ms, n, off_ms);

    let setup2 = Setup::almaden(2, 506);
    let programs2: Vec<_> = (1..=points)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.rx(0, k as f64 / points as f64 * std::f64::consts::PI);
            c.cnot(0, 1);
            Compiler::new(&setup2.device, &setup2.calibration, CompileMode::Optimized)
                .compile(&c)
                .unwrap()
                .program
        })
        .collect();
    let repeats2 = if smoke { 1 } else { 8 };
    let (n, off_ms) = time_best(if smoke { 1 } else { 2 }, || {
        theta_sweep_workload(&setup2, &programs2, repeats2, false, shots_sweep)
    });
    record(
        &mut entries,
        "theta_sweep_2q_cache_off",
        1,
        off_ms,
        n,
        off_ms,
    );
    let (n, ms) = time_best(if smoke { 1 } else { 2 }, || {
        theta_sweep_workload(&setup2, &programs2, repeats2, true, shots_sweep)
    });
    record(&mut entries, "theta_sweep_2q_cache_on", 1, ms, n, off_ms);

    // Service throughput: the full request path (queue → dedup → shard →
    // batch → compile → execute → sample) under a mixed job stream, at a
    // growing worker pool. The checksum over every output must be
    // bit-identical at every worker count — the service inherits the shot
    // pool's determinism contract — so a mismatch is fatal, not a slow row.
    let service_jobs = service_job_mix(smoke);
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let mut service_baseline_ms = 0.0;
    let mut service_checksum = None;
    for &workers in worker_counts {
        let (wall_ms, p50_ms, p99_ms, dedup_rate, checksum) =
            service_throughput_run(&service_jobs, workers);
        match service_checksum {
            None => service_checksum = Some(checksum),
            Some(expected) if expected != checksum => die(format_args!(
                "service results diverged at {workers} workers \
                 ({expected:016x} vs {checksum:016x})"
            )),
            Some(_) => {}
        }
        if workers == worker_counts[0] {
            service_baseline_ms = wall_ms;
        }
        record(
            &mut entries,
            "service_throughput",
            workers,
            wall_ms,
            service_jobs.len(),
            service_baseline_ms,
        );
        if let Some(entry) = entries.last_mut() {
            entry.extra = vec![
                ("p50_ms", p50_ms),
                ("p99_ms", p99_ms),
                ("dedup_hit_rate", dedup_rate),
            ];
        }
        println!(
            "{:<28}            p50 {p50_ms:.2} ms, p99 {p99_ms:.2} ms, dedup {:.0}%",
            "",
            dedup_rate * 100.0
        );
    }

    // The generated benchmark corpus, compiled gate-level vs pulse-level
    // and executed end-to-end through `quant_corpus::run_corpus` — once on
    // the serial pool, once on the scaling pool, with a fatal cross-pool
    // checksum check mirroring the service rows' guard. The per-family
    // rows carry the paper's headline claim: `speedup` there is the
    // gate-over-pulse schedule-duration ratio, not a wall-clock ratio.
    {
        use quant_corpus::{run_corpus, CorpusOptions, Tier};
        let tier = if smoke { Tier::Smoke } else { Tier::Full };
        let corpus_shots = if smoke { 256 } else { 2048 };
        let clock_origin = Instant::now();
        let options = CorpusOptions {
            tier,
            shots: corpus_shots,
            clock: Some(Arc::new(move || clock_origin.elapsed().as_millis() as u64)),
            ..CorpusOptions::default()
        };
        let name = if smoke { "corpus_smoke" } else { "corpus_full" };
        let t = Instant::now();
        let serial_report = match run_corpus(&options, &serial) {
            Ok(r) => r,
            Err(e) => die(format_args!("corpus run (serial): {e}")),
        };
        let corpus_serial_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let report = match run_corpus(&options, &pool) {
            Ok(r) => r,
            Err(e) => die(format_args!("corpus run (pooled): {e}")),
        };
        let corpus_pooled_ms = t.elapsed().as_secs_f64() * 1e3;
        let (expected, checksum) = (serial_report.checksum(), report.checksum());
        if expected != checksum {
            die(format_args!(
                "corpus results diverged across pools \
                 ({expected:016x} vs {checksum:016x})"
            ));
        }
        let total_shots = report.circuits.len() * 2 * corpus_shots;
        record(
            &mut entries,
            name,
            1,
            corpus_serial_ms,
            total_shots,
            corpus_serial_ms,
        );
        record(
            &mut entries,
            name,
            pool.threads(),
            corpus_pooled_ms,
            total_shots,
            corpus_serial_ms,
        );

        for summary in report.family_summaries() {
            // Compile wall clock summed over the family's circuits (both
            // flows), from the clock injected above.
            let compile_ms: u64 = report
                .circuits
                .iter()
                .filter(|c| c.family == summary.family)
                .map(|c| c.standard.wall_ms.unwrap_or(0) + c.optimized.wall_ms.unwrap_or(0))
                .sum();
            let entry = Entry {
                workload: format!("corpus_{}", summary.family),
                threads: pool.threads(),
                wall_ms: compile_ms as f64,
                shots_per_s: summary.circuits as f64 * 2.0 * corpus_shots as f64
                    / (corpus_pooled_ms / 1e3),
                speedup: 1.0 / summary.mean_duration_ratio,
                extra: vec![
                    ("mean_duration_ratio", summary.mean_duration_ratio),
                    ("mean_fid_std", summary.mean_fidelity_standard),
                    ("mean_fid_opt", summary.mean_fidelity_optimized),
                ],
            };
            println!(
                "{:<28} threads={:<2} {:>10.1} ms   dur ratio {:.3}   fid {:.4} → {:.4}",
                entry.workload,
                entry.threads,
                entry.wall_ms,
                summary.mean_duration_ratio,
                summary.mean_fidelity_standard,
                summary.mean_fidelity_optimized
            );
            entries.push(entry);
        }
        println!(
            "{:<28}            pulse wins duration on {}/{} families (checksum {checksum:016x})",
            "",
            report.families_where_pulse_wins(),
            report.family_summaries().len()
        );
    }

    let items: Vec<json::Json> = entries
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("workload", json::string(&e.workload)),
                ("threads", json::number(e.threads as f64)),
                ("wall_ms", json::number(e.wall_ms)),
                ("shots_per_s", json::number(e.shots_per_s)),
                ("speedup", json::number(e.speedup)),
            ];
            for &(name, value) in &e.extra {
                fields.push((name, json::number(value)));
            }
            json::object(fields)
        })
        .collect();
    let path = if smoke {
        "BENCH_smoke.json"
    } else {
        "BENCH_7.json"
    };
    match std::fs::write(path, json::array(items).pretty()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
