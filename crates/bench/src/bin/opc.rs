//! `opc` — the OpenPulse-optimizing compiler, as a command-line tool.
//!
//! Reads an OpenQASM 2.0 program (file argument or stdin), compiles it for
//! a simulated Almaden-like device in both the standard and optimized
//! flows, and reports every stage: the transpiled assembly, the basis-gate
//! program, the pulse schedule (duration, pulse count, ASCII timeline) and
//! optionally a noisy execution.
//!
//! ```text
//! opc [FLAGS] [program.qasm]
//!   --run             execute with the full noise model (4000 shots)
//!   --shots N         shot count for --run
//!   --seed N          device/calibration seed (default 7)
//!   --standard-only   only the baseline flow
//!   --optimized-only  only the pulse-optimized flow
//! ```
//!
//! Example: `cargo run --release -p repro-bench --bin opc -- --run bell.qasm`
//!
//! The one-command pipeline and the benchmark corpus live behind two
//! subcommands (see `quant-corpus`):
//!
//! ```text
//! opc compile [--mode standard|optimized] [--shots N] [--seed N]
//!             [--noiseless] [--trajectories N] program.qasm
//! opc corpus  [--tier smoke|full] [--shots N] [--seed N]
//!             [--device-seed N] [--out DIR] [--check]
//! ```
//!
//! `opc compile` runs QASM → routing → compilation → pulse schedule →
//! simulated execution → counts + Hellinger fidelity in one shot
//! (`quant_corpus::run_qasm`). `opc corpus` runs the generated benchmark
//! corpus under both compilation flows and writes `CORPUS_REPORT.json` +
//! `CORPUS_REPORT.md`; `--check` exits nonzero unless pulse-level
//! compilation beats gate-level on schedule duration for ≥ 3 families.
//!
//! Two service subcommands turn the same pipeline into a job engine
//! (see `quant-service`):
//!
//! ```text
//! opc serve  [--addr HOST:PORT] [--workers N] [--queue N]
//! opc submit [--addr HOST:PORT] [--device armonk|almaden] [--qubits N]
//!            [--device-seed N] [--seed N] [--shots N] [--noiseless]
//!            [--standard] program.qasm [more.qasm ...]
//! ```
//!
//! `opc serve` runs a `CompileService` behind a line-oriented TCP
//! protocol (one thread per connection, the service's own worker pool
//! and queue behind it). `opc submit` sends jobs to such a server — or,
//! without `--addr`, runs them through an in-process service, so the
//! request path is testable with no socket at all.

use pulse_compiler::{CompileMode, Compiler};
use quant_circuit::qasm;
use quant_corpus::{CorpusOptions, PipelineConfig, Tier};
use quant_device::{calibrate, DeviceModel, PulseExecutor, ShotPool, DT};
use quant_math::seeded;
use quant_service::{wire, CompileService, DeviceKind, DeviceSpec, JobSpec, ServiceConfig};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

struct Args {
    path: Option<String>,
    run: bool,
    shots: usize,
    seed: u64,
    modes: Vec<CompileMode>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: None,
        run: false,
        shots: 4000,
        seed: 7,
        modes: vec![CompileMode::Standard, CompileMode::Optimized],
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--run" => args.run = true,
            "--shots" => {
                args.shots = iter
                    .next()
                    .ok_or("--shots needs a value")?
                    .parse()
                    .map_err(|_| "--shots needs an integer")?;
            }
            "--seed" => {
                args.seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
            }
            "--standard-only" => args.modes = vec![CompileMode::Standard],
            "--optimized-only" => args.modes = vec![CompileMode::Optimized],
            "--help" | "-h" => {
                return Err("usage: opc [--run] [--shots N] [--seed N] \
                            [--standard-only|--optimized-only] [program.qasm]"
                    .to_string())
            }
            other if !other.starts_with('-') => args.path = Some(other.to_string()),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// `opc serve`: a `CompileService` behind the wire protocol.
fn cmd_serve(rest: &[String]) -> ! {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServiceConfig::default();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let take = |it: &mut std::slice::Iter<'_, String>, what: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("opc serve: {what} needs a value");
                    std::process::exit(2);
                }
            }
        };
        match arg.as_str() {
            "--addr" => addr = take(&mut iter, "--addr"),
            "--workers" => match take(&mut iter, "--workers").parse() {
                Ok(n) => cfg.workers = n,
                Err(_) => {
                    eprintln!("opc serve: --workers needs an integer");
                    std::process::exit(2);
                }
            },
            "--queue" => match take(&mut iter, "--queue").parse() {
                Ok(n) => cfg.queue_capacity = n,
                Err(_) => {
                    eprintln!("opc serve: --queue needs an integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("opc serve: unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let service = match CompileService::new(cfg) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("opc serve: {e}");
            std::process::exit(1);
        }
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("opc serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "opc serve: listening on {addr} ({} workers, queue {})",
        service.config().workers,
        service.config().queue_capacity
    );
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("opc serve: accept failed: {e}");
                continue;
            }
        };
        let service = Arc::clone(&service);
        let handle = std::thread::Builder::new()
            .name("opc-conn".into())
            .spawn(move || {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".into());
                let reader_stream = match stream.try_clone() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("opc serve [{peer}]: clone failed: {e}");
                        return;
                    }
                };
                let mut reader = BufReader::new(reader_stream);
                let mut writer = BufWriter::new(stream);
                if let Err(e) = wire::serve_connection(&mut reader, &mut writer, &service) {
                    eprintln!("opc serve [{peer}]: {e}");
                }
            });
        if let Err(e) = handle {
            eprintln!("opc serve: spawn failed: {e}");
        }
    }
    std::process::exit(0);
}

struct SubmitArgs {
    addr: Option<String>,
    device: DeviceKind,
    qubits: Option<u32>,
    device_seed: u64,
    seed: u64,
    shots: usize,
    noisy: bool,
    mode: CompileMode,
    paths: Vec<String>,
}

fn parse_submit_args(rest: &[String]) -> Result<SubmitArgs, String> {
    let mut args = SubmitArgs {
        addr: None,
        device: DeviceKind::Almaden,
        qubits: None,
        device_seed: 7,
        seed: 7,
        shots: 4000,
        noisy: true,
        mode: CompileMode::Optimized,
        paths: Vec::new(),
    };
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(take("--addr")?),
            "--device" => {
                let v = take("--device")?;
                args.device = DeviceKind::parse(&v)
                    .ok_or_else(|| format!("unknown device `{v}` (armonk|almaden)"))?;
            }
            "--qubits" => {
                args.qubits = Some(
                    take("--qubits")?
                        .parse()
                        .map_err(|_| "--qubits needs an integer".to_string())?,
                )
            }
            "--device-seed" => {
                args.device_seed = take("--device-seed")?
                    .parse()
                    .map_err(|_| "--device-seed needs an integer".to_string())?
            }
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--shots" => {
                args.shots = take("--shots")?
                    .parse()
                    .map_err(|_| "--shots needs an integer".to_string())?
            }
            "--noiseless" => args.noisy = false,
            "--standard" => args.mode = CompileMode::Standard,
            other if !other.starts_with('-') => args.paths.push(other.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.paths.is_empty() {
        return Err("opc submit needs at least one .qasm file".to_string());
    }
    Ok(args)
}

fn print_output(path: &str, out: &quant_service::JobOutput) {
    println!(
        "{path}: ok — key {:016x}, {} pulses, {} dt, fidelity {:.4}",
        out.key, out.pulse_count, out.duration_dt, out.fidelity
    );
    for (idx, &c) in out.counts.iter().enumerate() {
        if c > 0 {
            let bits: String = (0..out.num_qubits)
                .map(|q| if (idx >> q) & 1 == 1 { '1' } else { '0' })
                .collect();
            println!("  |{bits}⟩ (q0 first): {c}");
        }
    }
}

/// `opc submit`: jobs to a remote server, or through an in-process
/// service when no `--addr` is given.
fn cmd_submit(rest: &[String]) -> ! {
    let args = match parse_submit_args(rest) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("opc submit: {msg}");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    let jobs: Vec<(String, JobSpec)> = args
        .paths
        .iter()
        .filter_map(|path| match std::fs::read_to_string(path) {
            Ok(source) => {
                // Width defaults to the parsed register size so small
                // programs do not pay for a 10-qubit tune-up.
                let qubits = args
                    .qubits
                    .or_else(|| qasm::parse(&source).ok().map(|c| c.num_qubits()));
                let device = DeviceSpec::new(args.device, qubits.unwrap_or(1), args.device_seed);
                let spec = JobSpec {
                    device,
                    circuit: quant_service::CircuitSource::Qasm(source),
                    mode: args.mode,
                    shots: args.shots,
                    seed: args.seed,
                    noisy: args.noisy,
                };
                Some((path.clone(), spec))
            }
            Err(e) => {
                eprintln!("opc submit: cannot read {path}: {e}");
                failed = true;
                None
            }
        })
        .collect();

    match &args.addr {
        Some(addr) => {
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("opc submit: cannot connect to {addr}: {e}");
                    std::process::exit(1);
                }
            };
            let reader_stream = match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("opc submit: clone failed: {e}");
                    std::process::exit(1);
                }
            };
            let mut reader = BufReader::new(reader_stream);
            let mut writer = BufWriter::new(stream);
            for (path, spec) in &jobs {
                let sent = wire::write_request(&mut writer, spec)
                    .and_then(|()| writer.flush())
                    .and_then(|()| wire::read_response(&mut reader));
                match sent {
                    Ok(wire::WireResponse::Ok(out)) => print_output(path, &out),
                    Ok(wire::WireResponse::Error(kind, msg)) => {
                        eprintln!("{path}: {kind} error — {msg}");
                        failed = true;
                    }
                    Err(e) => {
                        eprintln!("{path}: transport error — {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        None => {
            let service = match CompileService::new(ServiceConfig::default()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("opc submit: {e}");
                    std::process::exit(1);
                }
            };
            let tickets: Vec<_> = jobs
                .iter()
                .map(|(path, spec)| (path, service.submit(spec.clone())))
                .collect();
            for (path, ticket) in tickets {
                match ticket.and_then(|t| t.wait().map(|out| (*out).clone())) {
                    Ok(out) => print_output(path, &out),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        failed = true;
                    }
                }
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Prints measurement counts as little-endian bit strings.
fn print_counts(counts: &[u64], width: u32) {
    for (idx, &c) in counts.iter().enumerate() {
        if c > 0 {
            let bits: String = (0..width)
                .map(|q| if (idx >> q) & 1 == 1 { '1' } else { '0' })
                .collect();
            println!("  |{bits}⟩ (q0 first): {c}");
        }
    }
}

/// `opc compile`: the one-command QASM → pulses → counts pipeline.
fn die_compile(msg: &str) -> ! {
    eprintln!("opc compile: {msg}");
    std::process::exit(2);
}

fn cmd_compile(rest: &[String]) -> ! {
    let die = die_compile;
    let mut config = PipelineConfig::default();
    let mut path: Option<String> = None;
    let mut device_seed = 7u64;
    let mut trajectories_requested = false;
    let mut verify = true;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| -> String {
            iter.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--mode" => {
                config.mode = match take("--mode").as_str() {
                    "standard" => CompileMode::Standard,
                    "optimized" => CompileMode::Optimized,
                    other => die(&format!("unknown mode `{other}`")),
                }
            }
            "--shots" => {
                config.shots = take("--shots")
                    .parse()
                    .unwrap_or_else(|_| die("--shots needs an integer"))
            }
            "--seed" => {
                config.seed = take("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"));
                device_seed = config.seed;
            }
            "--trajectories" => {
                config.trajectories = take("--trajectories")
                    .parse()
                    .unwrap_or_else(|_| die("--trajectories needs an integer"));
                trajectories_requested = true;
            }
            "--noiseless" => config.noisy = false,
            "--verify" => verify = true,
            "--no-verify" => verify = false,
            "--help" | "-h" => die(
                "usage: opc compile [--mode standard|optimized] [--shots N] \
                 [--seed N] [--noiseless] [--trajectories N] [--no-verify] program.qasm",
            ),
            other if !other.starts_with('-') => path = Some(other.to_string()),
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    let Some(path) = path else {
        die("pass a program.qasm")
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("opc compile: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let circuit = match qasm::parse(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("opc compile: parse error: {e}");
            std::process::exit(1);
        }
    };
    let mut rng = seeded(device_seed);
    let device = DeviceModel::almaden_like(circuit.num_qubits() as usize, &mut rng);
    let calibration = calibrate(&device, &mut rng);
    let run = match quant_corpus::run_circuit(
        &device,
        &calibration,
        &circuit,
        &config,
        &ShotPool::from_env(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("opc compile: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "compiled {} ({:?} flow): {} ops on {} qubits, {} swaps inserted, routed depth {}",
        path,
        run.mode,
        circuit.len(),
        circuit.num_qubits(),
        run.swaps_inserted,
        run.routed_depth,
    );
    println!(
        "pulse schedule: {} pulses, {} dt = {:.2} µs",
        run.pulse_count,
        run.duration_dt,
        run.duration_dt as f64 * DT * 1e6
    );
    if verify {
        let findings = quant_pulse::verify(&run.compiled.program.schedule, &device.verify_spec());
        if findings.is_empty() {
            println!(
                "schedule verified clean ({} static rules)",
                quant_pulse::VERIFY_RULES.len()
            );
        } else {
            eprintln!("opc compile: schedule failed verification:");
            for f in &findings {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
    println!("{}", run.compiled.program.schedule.ascii_art(72));
    if trajectories_requested && run.executor == quant_corpus::ExecutorKind::Density {
        eprintln!(
            "opc compile: warning: --trajectories {} ignored — {} qubits fits the exact \
             density-matrix executor, which takes no trajectory count",
            config.trajectories,
            circuit.num_qubits(),
        );
    }
    println!(
        "execution ({} shots, {}, {} backend): Hellinger fidelity {:.4}",
        config.shots,
        if config.noisy { "noisy" } else { "noiseless" },
        run.executor.name(),
        run.fidelity
    );
    print_counts(&run.counts, circuit.num_qubits());
    std::process::exit(0);
}

/// `opc corpus`: the comparative benchmark platform.
fn die_corpus(msg: &str) -> ! {
    eprintln!("opc corpus: {msg}");
    std::process::exit(2);
}

fn cmd_corpus(rest: &[String]) -> ! {
    let die = die_corpus;
    let mut options = CorpusOptions::default();
    let mut out_dir = String::from(".");
    let mut check = false;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| -> String {
            iter.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--tier" => {
                options.tier = match take("--tier").as_str() {
                    "smoke" => Tier::Smoke,
                    "full" => Tier::Full,
                    other => die(&format!("unknown tier `{other}`")),
                }
            }
            "--shots" => {
                options.shots = take("--shots")
                    .parse()
                    .unwrap_or_else(|_| die("--shots needs an integer"))
            }
            "--seed" => {
                options.seed = take("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"))
            }
            "--device-seed" => {
                options.device_seed = take("--device-seed")
                    .parse()
                    .unwrap_or_else(|_| die("--device-seed needs an integer"))
            }
            "--out" => out_dir = take("--out"),
            "--check" => check = true,
            "--help" | "-h" => die(
                "usage: opc corpus [--tier smoke|full] [--shots N] [--seed N] \
                 [--device-seed N] [--out DIR] [--check]",
            ),
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    // Wall-clock columns come from an injected clock: the corpus library
    // itself is clock-free per the determinism lint.
    let t0 = std::time::Instant::now();
    options.clock = Some(Arc::new(move || t0.elapsed().as_millis() as u64));
    let report = match quant_corpus::run_corpus(&options, &ShotPool::from_env()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("opc corpus: {e}");
            std::process::exit(1);
        }
    };
    let json_path = format!("{out_dir}/CORPUS_REPORT.json");
    let md_path = format!("{out_dir}/CORPUS_REPORT.md");
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("opc corpus: write {json_path}: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&md_path, report.to_markdown()) {
        eprintln!("opc corpus: write {md_path}: {e}");
        std::process::exit(1);
    }
    print!("{}", report.to_markdown());
    println!("\nwrote {json_path} and {md_path}");
    let wins = report.families_where_pulse_wins();
    if check && wins < 3 {
        eprintln!(
            "opc corpus: CHECK FAILED — pulse-level compilation beats gate-level \
             on duration for only {wins}/5 families (need ≥ 3)"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => cmd_serve(&argv[1..]),
        Some("submit") => cmd_submit(&argv[1..]),
        Some("compile") => cmd_compile(&argv[1..]),
        Some("corpus") => cmd_corpus(&argv[1..]),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let source = match &args.path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("opc: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() || buf.trim().is_empty() {
                eprintln!("opc: no input (pass a .qasm file or pipe a program on stdin)");
                std::process::exit(1);
            }
            buf
        }
    };

    let circuit = match qasm::parse(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("opc: parse error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed {} operations on {} qubits",
        circuit.len(),
        circuit.num_qubits()
    );

    let mut rng = seeded(args.seed);
    let device = DeviceModel::almaden_like(circuit.num_qubits() as usize, &mut rng);
    let calibration = calibrate(&device, &mut rng);

    for &mode in &args.modes {
        let compiled = match Compiler::new(&device, &calibration, mode).compile(&circuit) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("opc: {mode:?} compile error: {e}");
                eprintln!("(two-qubit gates must touch coupled pairs; route first)");
                std::process::exit(1);
            }
        };
        println!("\n================ {mode:?} ================");
        println!(
            "-- assembly (after passes) --\n{}",
            qasm::print(&compiled.assembly)
        );
        println!(
            "-- pulse schedule: {} pulses, {} dt = {:.2} µs --",
            compiled.pulse_count(),
            compiled.duration(),
            compiled.duration() as f64 * DT * 1e6
        );
        println!("{}", compiled.program.schedule.ascii_art(72));
        if args.run {
            let exec = PulseExecutor::new(&device);
            let out = exec.run(&compiled.program, &mut rng);
            let counts = out.sample_counts(&mut rng, args.shots);
            println!("-- execution ({} shots, noisy) --", args.shots);
            for (idx, &c) in counts.iter().enumerate() {
                if c > 0 {
                    let bits: String = (0..circuit.num_qubits())
                        .map(|q| if (idx >> q) & 1 == 1 { '1' } else { '0' })
                        .collect();
                    println!("  |{bits}⟩ (q0 first): {c}");
                }
            }
        }
    }
}
