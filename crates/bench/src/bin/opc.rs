//! `opc` — the OpenPulse-optimizing compiler, as a command-line tool.
//!
//! Reads an OpenQASM 2.0 program (file argument or stdin), compiles it for
//! a simulated Almaden-like device in both the standard and optimized
//! flows, and reports every stage: the transpiled assembly, the basis-gate
//! program, the pulse schedule (duration, pulse count, ASCII timeline) and
//! optionally a noisy execution.
//!
//! ```text
//! opc [FLAGS] [program.qasm]
//!   --run             execute with the full noise model (4000 shots)
//!   --shots N         shot count for --run
//!   --seed N          device/calibration seed (default 7)
//!   --standard-only   only the baseline flow
//!   --optimized-only  only the pulse-optimized flow
//! ```
//!
//! Example: `cargo run --release -p repro-bench --bin opc -- --run bell.qasm`

use pulse_compiler::{CompileMode, Compiler};
use quant_circuit::qasm;
use quant_device::{calibrate, DeviceModel, PulseExecutor, DT};
use quant_math::seeded;
use std::io::Read;

struct Args {
    path: Option<String>,
    run: bool,
    shots: usize,
    seed: u64,
    modes: Vec<CompileMode>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: None,
        run: false,
        shots: 4000,
        seed: 7,
        modes: vec![CompileMode::Standard, CompileMode::Optimized],
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--run" => args.run = true,
            "--shots" => {
                args.shots = iter
                    .next()
                    .ok_or("--shots needs a value")?
                    .parse()
                    .map_err(|_| "--shots needs an integer")?;
            }
            "--seed" => {
                args.seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
            }
            "--standard-only" => args.modes = vec![CompileMode::Standard],
            "--optimized-only" => args.modes = vec![CompileMode::Optimized],
            "--help" | "-h" => {
                return Err("usage: opc [--run] [--shots N] [--seed N] \
                            [--standard-only|--optimized-only] [program.qasm]"
                    .to_string())
            }
            other if !other.starts_with('-') => args.path = Some(other.to_string()),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let source = match &args.path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("opc: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() || buf.trim().is_empty() {
                eprintln!("opc: no input (pass a .qasm file or pipe a program on stdin)");
                std::process::exit(1);
            }
            buf
        }
    };

    let circuit = match qasm::parse(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("opc: parse error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed {} operations on {} qubits",
        circuit.len(),
        circuit.num_qubits()
    );

    let mut rng = seeded(args.seed);
    let device = DeviceModel::almaden_like(circuit.num_qubits() as usize, &mut rng);
    let calibration = calibrate(&device, &mut rng);

    for &mode in &args.modes {
        let compiled = match Compiler::new(&device, &calibration, mode).compile(&circuit) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("opc: {mode:?} compile error: {e}");
                eprintln!("(two-qubit gates must touch coupled pairs; route first)");
                std::process::exit(1);
            }
        };
        println!("\n================ {mode:?} ================");
        println!("-- assembly (after passes) --\n{}", qasm::print(&compiled.assembly));
        println!(
            "-- pulse schedule: {} pulses, {} dt = {:.2} µs --",
            compiled.pulse_count(),
            compiled.duration(),
            compiled.duration() as f64 * DT * 1e6
        );
        println!("{}", compiled.program.schedule.ascii_art(72));
        if args.run {
            let exec = PulseExecutor::new(&device);
            let out = exec.run(&compiled.program, &mut rng);
            let counts = out.sample_counts(&mut rng, args.shots);
            println!("-- execution ({} shots, noisy) --", args.shots);
            for (idx, &c) in counts.iter().enumerate() {
                if c > 0 {
                    let bits: String = (0..circuit.num_qubits())
                        .map(|q| if (idx >> q) & 1 == 1 { '1' } else { '0' })
                        .collect();
                    println!("  |{bits}⟩ (q0 first): {c}");
                }
            }
        }
    }
}
