//! Figure 8: open-CNOT pulse schedules — standard vs cross-gate pulse
//! cancellation (Optimization 2).
//!
//! Paper: cancellation reduces the schedule from 1984 dt to 1504 dt (24 %)
//! and nudges success probability from 87.1(9) % to 87.3(9) % over 16 k
//! shots.

use pulse_compiler::{CompileMode, Compiler};
use quant_circuit::{Circuit, Gate};
use quant_device::{PulseExecutor, DT};
use quant_math::seeded;
use repro_bench::Setup;

fn main() {
    let setup = Setup::almaden(2, 808);
    let shots = 16_000;
    let mut c = Circuit::new(2);
    c.push(Gate::OpenCnot, &[0, 1]);
    // Ideal: control |0⟩ → target flips → outcome index 2 (q1 = 1).
    let target_index = 2;

    println!("Figure 8 — open-CNOT: standard vs pulse-cancelled ({shots} shots)\n");
    let mut durations = Vec::new();
    for (label, mode) in [
        ("standard", CompileMode::Standard),
        ("optimized (X-pulse cancellation)", CompileMode::Optimized),
    ] {
        let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
            .compile(&c)
            .unwrap();
        let mut rng = seeded(9_911);
        let exec = PulseExecutor::new(&setup.device);
        let out = exec.run(&compiled.program, &mut rng);
        let counts = out.sample_counts(&mut rng, shots);
        let success = counts[target_index] as f64 / shots as f64;
        let sigma = (success * (1.0 - success) / shots as f64).sqrt();
        durations.push(compiled.duration());
        println!(
            "{label}\n  duration: {} dt ({:.0} ns)   pulses: {}   success: {:.2}({:.0})%",
            compiled.duration(),
            compiled.duration() as f64 * DT * 1e9,
            compiled.pulse_count(),
            100.0 * success,
            1000.0 * sigma
        );
        println!("{}", compiled.program.schedule.ascii_art(64));
    }
    let reduction = 100.0 * (1.0 - durations[1] as f64 / durations[0] as f64);
    println!("duration reduction: {reduction:.0}%");
    println!("paper reference   : 24% (1984 dt → 1504 dt); success 87.1% → 87.3%");
}
