//! Figure 13: randomized-benchmarking-style decomposition of the fidelity
//! gain (paper §8.3), on the Armonk-like single-qubit device.
//!
//! Three variants per sequence length K = 2…25 (5 randomizations each):
//! * **standard** — two-pulse U3 compilation;
//! * **optimized** — DirectRx single-pulse compilation;
//! * **optimized-slow** — DirectRx pulses padded with idle to match the
//!   standard duration, isolating the shorter-pulse contribution.
//!
//! Paper: gate fidelities f = 99.82 % / 99.87 % / 99.83 %, implying ~70 %
//! of the improvement comes from shorter pulses.

use pulse_compiler::{CompileMode, Compiler};
use quant_char::{rb_sequence, RbData};
use quant_circuit::Circuit;
use quant_device::{Block, LoweredProgram, PulseExecutor, ShotPool};
use quant_math::seeded;
use repro_bench::Setup;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Standard,
    Optimized,
    OptimizedSlow,
}

fn compile_variant(setup: &Setup, c: &Circuit, v: Variant) -> LoweredProgram {
    let mode = match v {
        Variant::Standard => CompileMode::Standard,
        _ => CompileMode::Optimized,
    };
    let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
        .compile(c)
        .unwrap();
    let mut program = compiled.program;
    if v == Variant::OptimizedSlow {
        // NO-OP idle after every gate so the total matches the standard
        // duration (each optimized 1q gate is one pulse shorter).
        let std_dur = Compiler::new(&setup.device, &setup.calibration, CompileMode::Standard)
            .compile(c)
            .unwrap()
            .duration();
        let deficit = std_dur.saturating_sub(program.duration());
        if deficit > 0 {
            program.blocks.push(Block::Idle {
                qubit: 0,
                duration: deficit,
            });
        }
    }
    program
}

fn main() {
    let setup = Setup::armonk(1313);
    let shots = 8000;
    let randomizations = 6;
    // The paper swept K = 2…25 with per-gate error ~1.8e-3; our simulated
    // Armonk's gates are ~4x cleaner, so we extend the sweep to keep the
    // total decay depth comparable.
    let lengths: Vec<usize> = (1..=20).map(|i| 20 * i).collect();
    let exec = PulseExecutor::new(&setup.device);

    println!("Figure 13 — RB-style decay on the Armonk-like device");
    println!(
        "({} lengths × {randomizations} randomizations × 3 variants × {shots} shots)\n",
        lengths.len()
    );

    // Every (length, randomization) cell derives its RNG from its own
    // seed, so the grid fans across the pool with results identical to
    // the serial sweep.
    let pool = ShotPool::from_env();
    let mut fits = Vec::new();
    for (name, variant) in [
        ("optimized", Variant::Optimized),
        ("optimized-slow", Variant::OptimizedSlow),
        ("standard", Variant::Standard),
    ] {
        let cells = pool.map_indices(lengths.len() * randomizations, |j| {
            let k = lengths[j / randomizations];
            let r = j % randomizations;
            let mut rng = seeded(5000 + (k * 31 + r) as u64);
            let c = rb_sequence(k, &mut rng);
            let program = compile_variant(&setup, &c, variant);
            let out = exec.run(&program, &mut rng);
            let counts = out.sample_counts(&mut rng, shots);
            counts[0] as f64 / shots as f64
        });
        let survival: Vec<f64> = cells
            .chunks(randomizations)
            .map(|c| c.iter().sum::<f64>() / randomizations as f64)
            .collect();
        let data = RbData {
            lengths: lengths.clone(),
            survival,
        };
        let fit = data.fit();
        println!(
            "{name:<15} f = {:.4}%   a = {:.3}  b = {:.3}",
            100.0 * fit.f,
            fit.a,
            fit.b
        );
        fits.push((name, fit.f));
    }

    let f_opt = fits[0].1;
    let f_slow = fits[1].1;
    let f_std = fits[2].1;
    let total_gain = f_opt - f_std;
    if total_gain > 0.0 {
        let from_speed = (f_opt - f_slow) / total_gain;
        println!(
            "\nshorter pulses account for {:.0}% of the fidelity gain",
            100.0 * from_speed
        );
    } else {
        println!("\n(no net gain measured — see EXPERIMENTS.md discussion)");
    }
    println!("paper reference: f = 99.87% / 99.83% / 99.82%; ~70% from shorter pulses");
}
