//! Figure 9: tomography of the target qubit under CR(θ), θ swept by
//! horizontally stretching the calibrated echo (41 angles × 3 axes ×
//! 2 variants × 1000 shots = 246 k shots in the paper).
//!
//! With the control in |0⟩, CR(θ) rotates the target about X by θ: the
//! ideal curves are ⟨Y⟩ = −sin θ, ⟨Z⟩ = cos θ, ⟨X⟩ = 0. Both the
//! noiseless simulation and the noisy experiment should track them.

use quant_device::ShotPool;
use quant_math::seeded;
use quant_pulse::Channel;
use quant_sim::DensityMatrix;
use repro_bench::{shot_noise, Setup};
use std::f64::consts::PI;

/// Integrates the stretched echoed-CR schedule and returns the target's
/// (⟨X⟩, ⟨Y⟩, ⟨Z⟩); optionally with drifted physics and shot noise.
fn measure(
    setup: &Setup,
    theta: f64,
    noisy: bool,
    shots: usize,
    rng: &mut rand::rngs::StdRng,
) -> (f64, f64, f64) {
    if theta.abs() < 1e-12 {
        return (0.0, 0.0, 1.0);
    }
    let schedule = setup
        .calibration
        .echoed_cr_schedule(&setup.device, 0, 1, theta)
        .unwrap();
    let pair = if noisy {
        setup.device.pair_exec(0, 1)
    } else {
        setup.device.pair_cal(0, 1)
    }
    .unwrap();
    let r = pair.integrate(
        &schedule,
        Channel::Drive(0),
        Channel::Drive(1),
        setup.device.control_channel(0, 1).unwrap(),
    );
    let mut rho = DensityMatrix::zero_qubits(2);
    rho.apply_unitary(&r.unitary, &[0, 1]);
    let (mut x, mut y, mut z) = rho.bloch(1);
    if noisy {
        x = 2.0 * shot_noise((x + 1.0) / 2.0, shots, rng) - 1.0;
        y = 2.0 * shot_noise((y + 1.0) / 2.0, shots, rng) - 1.0;
        z = 2.0 * shot_noise((z + 1.0) / 2.0, shots, rng) - 1.0;
    }
    (x, y, z)
}

fn main() {
    let setup = Setup::almaden(2, 909);
    let shots = 1000;

    println!("Figure 9 — CR(θ) target-qubit tomography (41 angles, sim vs noisy exp)\n");
    println!(
        "{:>7} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "θ(deg)", "⟨Y⟩ideal", "⟨Z⟩ideal", "⟨Y⟩sim", "⟨Z⟩sim", "⟨Y⟩exp", "⟨Z⟩exp"
    );
    // One RNG stream per angle (`seed ^ index`) so the sweep fans out
    // deterministically across the pool.
    let pool = ShotPool::from_env();
    let rows = pool.map_indices(41, |i| {
        let mut rng = seeded(246_000 ^ i as u64);
        let theta = i as f64 / 40.0 * PI; // 0 … 180°
        let (_, sim_y, sim_z) = measure(&setup, theta, false, shots, &mut rng);
        let (_, exp_y, exp_z) = measure(&setup, theta, true, shots, &mut rng);
        (theta, sim_y, sim_z, exp_y, exp_z)
    });
    let mut worst_sim = 0.0_f64;
    let mut worst_exp = 0.0_f64;
    for (i, (theta, sim_y, sim_z, exp_y, exp_z)) in rows.into_iter().enumerate() {
        let ideal_y = -theta.sin();
        let ideal_z = theta.cos();
        if i % 5 == 0 {
            println!(
                "{:>7.1} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} | {:>8.3} {:>8.3}",
                theta.to_degrees(),
                ideal_y,
                ideal_z,
                sim_y,
                sim_z,
                exp_y,
                exp_z
            );
        }
        worst_sim = worst_sim
            .max((sim_y - ideal_y).abs())
            .max((sim_z - ideal_z).abs());
        worst_exp = worst_exp
            .max((exp_y - ideal_y).abs())
            .max((exp_z - ideal_z).abs());
    }
    println!("\nmax |sim − ideal| = {worst_sim:.3};  max |exp − ideal| = {worst_exp:.3}");
    println!("paper reference: experiment and simulation closely track the ideal curves");
}
