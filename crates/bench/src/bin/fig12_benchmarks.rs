//! Figure 12: error (Hellinger distance) reduction across the six
//! near-term algorithm benchmarks.
//!
//! Paper result (96 k shots on Almaden): mean error reduction 1.55×; the
//! largest benchmark (5-qubit QAOA) improves 2.32× (33.7 % → 14.5 %).
//!
//! ```text
//! cargo run --release -p repro-bench --bin fig12_benchmarks
//! ```

use quant_algos::{molecules, trotter, vqe, LineGraph};
use quant_circuit::Circuit;
use quant_device::ShotPool;
use repro_bench::{
    compare_flows, compare_flows_trajectory, qaoa_line_circuit, write_json, ExperimentRecord, Setup,
};

fn vqe_benchmark(m: &quant_algos::Molecule) -> Circuit {
    let r = vqe::solve(&m.hamiltonian);
    vqe::ucc_ansatz(r.theta)
}

fn qaoa_benchmark(n: usize) -> Circuit {
    let g = LineGraph::new(n);
    let ((gamma, beta), _) = g.solve_p1();
    g.qaoa_circuit(&[(gamma, beta)])
}

fn dynamics_benchmark(m: &quant_algos::Molecule) -> Circuit {
    // 6 Trotter steps, as in the paper.
    trotter::trotter_circuit(&m.hamiltonian, 3.0, 6)
}

fn main() {
    let shots = 8000;
    println!("Figure 12 — benchmark error (Hellinger distance), standard vs optimized");
    println!("(paper: mean reduction 1.55x; 5-qubit QAOA 2.32x, 33.7% → 14.5%)\n");
    println!(
        "{:<18} {:>10} {:>10} {:>9} {:>9}",
        "benchmark", "std err", "opt err", "err red.", "speedup"
    );

    let benchmarks: Vec<(&str, Circuit, usize)> = vec![
        ("H2 VQE", vqe_benchmark(&molecules::h2()), 2),
        ("LiH VQE", vqe_benchmark(&molecules::lih()), 2),
        ("QAOA-4 MAXCUT", qaoa_benchmark(4), 4),
        ("QAOA-5 MAXCUT", qaoa_benchmark(5), 5),
        ("CH4 dynamics", dynamics_benchmark(&molecules::methane()), 2),
        ("H2O dynamics", dynamics_benchmark(&molecules::water()), 2),
    ];

    // Each benchmark is seeded by its index, so fanning them across the
    // pool reproduces the serial results bit-for-bit.
    let pool = ShotPool::from_env();
    let comparisons = pool.map(&benchmarks, |i, (_, circuit, n)| {
        let setup = Setup::almaden(*n, 1000 + i as u64);
        compare_flows(&setup, circuit, shots, 2000 + i as u64)
    });

    let mut reductions = Vec::new();
    let mut speedups = Vec::new();
    let mut records = Vec::new();
    for ((name, _, _), cmp) in benchmarks.iter().zip(&comparisons) {
        reductions.push(cmp.error_reduction());
        speedups.push(cmp.speedup());
        records.push(ExperimentRecord {
            name: name.to_string(),
            comparison: cmp.clone(),
        });
        println!(
            "{:<18} {:>9.2}% {:>9.2}% {:>8.2}x {:>8.2}x",
            name,
            100.0 * cmp.error_standard,
            100.0 * cmp.error_optimized,
            cmp.error_reduction(),
            cmp.speedup()
        );
    }

    let geo_mean = reductions.iter().map(|r| r.ln()).sum::<f64>() / reductions.len() as f64;
    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "\nmean error reduction: {:.2}x (geometric)   mean speedup: {:.2}x",
        geo_mean.exp(),
        mean_speedup
    );
    println!("paper reference      : 1.55x                 ~2x");

    // Past the paper's 5-qubit ceiling: the same comparison on a 12-qubit
    // linear topology through the trajectory executor (the exact density
    // path stops at 6 qubits). Fixed angles keep the setup off the
    // exponential `solve_p1` search; the row is recorded alongside the
    // six density benchmarks but excluded from the paper-reference means.
    let name = "QAOA-12 MAXCUT (trajectory)";
    let setup = Setup::almaden(12, 1012);
    let circuit = qaoa_line_circuit(12, Some((0.7, 0.42)));
    let cmp = compare_flows_trajectory(&setup, &circuit, 8, shots, 2012, &pool);
    records.push(ExperimentRecord {
        name: name.to_string(),
        comparison: cmp.clone(),
    });
    println!(
        "\n{:<27} {:>9.2}% {:>9.2}% {:>8.2}x {:>8.2}x",
        name,
        100.0 * cmp.error_standard,
        100.0 * cmp.error_optimized,
        cmp.error_reduction(),
        cmp.speedup()
    );
    if std::path::Path::new("results").is_dir()
        && write_json("results/fig12_benchmarks.json", &records).is_ok()
    {
        println!("(machine-readable copy: results/fig12_benchmarks.json)");
    }
}
