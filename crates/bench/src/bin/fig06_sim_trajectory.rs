//! Figure 6: *simulated* DirectRx(θ) trajectories.
//!
//! The calibrated X pulse is scaled down by 0/40, 1/40, …, 40/40 and the
//! final state's Bloch vector is computed noiselessly (no phase
//! correction applied — this experiment *characterizes* the dephasing the
//! correction will later cancel). The paper's observation: the trajectory
//! deviates slightly from the X = 0 meridian with a sinusoidal pattern,
//! vanishing at exactly 0°, 90° and 180°.

use quant_math::C64;
use quant_sim::StateVector;
use repro_bench::{ascii_series, Setup};

fn main() {
    let setup = Setup::ideal(1, 606);
    let transmon = setup.device.transmon_cal(0);
    let base = setup.calibration.qubit(0).rx180_waveform("x");

    println!("Figure 6 — simulated DirectRx(θ): Bloch components of scaled X pulses\n");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>11}",
        "scale", "⟨X⟩", "⟨Y⟩", "⟨Z⟩", "X-deviation"
    );
    let mut scales = Vec::new();
    let mut xs = Vec::new();
    let mut max_dev = 0.0_f64;
    for i in 0..=40 {
        let s = i as f64 / 40.0;
        let (x, y, z) = if i == 0 {
            (0.0, 0.0, 1.0)
        } else {
            let u = transmon.integrate_waveform(&base.scaled(s)).unitary;
            let amps: Vec<C64> = (0..3).map(|r| u[(r, 0)]).collect();
            let psi = StateVector::from_amplitudes(&[3], amps);
            psi.bloch(0)
        };
        println!("{s:>6.3} {x:>9.5} {y:>9.5} {z:>9.5} {x:>11.5}");
        scales.push(s * 180.0);
        xs.push(x);
        max_dev = max_dev.max(x.abs());
    }
    let range = max_dev.max(1e-4);
    println!(
        "\n{}",
        ascii_series(
            "X-deviation from the meridian vs θ (degrees):",
            &scales,
            &xs,
            (-range, range)
        )
    );
    // Count sign changes — a sinusoidal pattern crosses zero in the middle.
    let crossings = xs
        .windows(2)
        .filter(|w| w[0].signum() != w[1].signum() && w[0].abs() > 1e-7)
        .count();
    println!("max |X-deviation| = {max_dev:.5}, zero crossings: {crossings}");
    println!("paper reference: small sinusoidal deviation, zero at 0°/90°/180°");
}
