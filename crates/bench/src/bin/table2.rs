//! Table 2: two-qubit operation costs by native gate.
//!
//! Each entry is the minimum number of native-gate applications (√iSWAP
//! counts 0.5 per use) achieving a ≥99.9 % average-gate-fidelity
//! decomposition, found by the same constrained derivative-free search the
//! paper used.
//!
//! Paper reference values:
//! ```text
//!                     CNOT CR90 iSWAP bSWAP MAP  √iSWAP CR(θ)
//! CNOT                 1    1    2     2     1    1      1
//! SWAP                 3    3    3     3     3    1.5    3
//! ZZ Interaction       2    2    2     2     2    1      1
//! Fermionic Simulation 3    3    3     3     3    1.5    3
//! ```

use pulse_compiler::decompose::{table2_cost, DecomposeOptions, NativeGate, TargetOp};

fn main() {
    let natives = [
        NativeGate::Cnot,
        NativeGate::Cr90,
        NativeGate::ISwap,
        NativeGate::BSwap,
        NativeGate::Map,
        NativeGate::SqrtISwap,
        NativeGate::CrTheta,
    ];
    let targets = [
        TargetOp::Cnot,
        TargetOp::Swap,
        TargetOp::ZzInteraction,
        TargetOp::FermionicSimulation,
    ];
    let paper: [[f64; 7]; 4] = [
        [1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 1.0],
        [3.0, 3.0, 3.0, 3.0, 3.0, 1.5, 3.0],
        [2.0, 2.0, 2.0, 2.0, 2.0, 1.0, 1.0],
        [3.0, 3.0, 3.0, 3.0, 3.0, 1.5, 3.0],
    ];

    let opts = DecomposeOptions {
        restarts: 24,
        max_evals: 12_000,
        max_uses: 6, // allows 6 half-uses of √iSWAP (cost 3.0)
        ..Default::default()
    };

    println!("Table 2 — decomposition cost by native gate (≥99.9% fidelity)\n");
    print!("{:<22}", "operation");
    for n in &natives {
        print!("{:>9}", n.name());
    }
    println!();

    let mut mismatches = 0;
    for (ti, target) in targets.iter().enumerate() {
        print!("{:<22}", target.name());
        for (ni, native) in natives.iter().enumerate() {
            let cost = table2_cost(*target, *native, &opts);
            match cost {
                Some(c) => {
                    let tick = if (c - paper[ti][ni]).abs() < 1e-9 {
                        ' '
                    } else {
                        mismatches += 1;
                        '!'
                    };
                    print!("{c:>8.1}{tick}");
                }
                None => {
                    mismatches += 1;
                    print!("{:>9}", "—");
                }
            }
        }
        println!();
    }
    println!("\n('!' marks deviation from the paper's value; {mismatches} mismatch(es))");
}
