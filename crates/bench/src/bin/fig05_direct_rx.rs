//! Figure 5: fidelity of Rx(θ) rotations — standard gate compilation (two
//! Rx90 pulses) vs optimized pulse compilation (one scaled pulse).
//!
//! Paper: the direct pulse path is 2× faster and shows ~16 % lower error
//! on average, with less jitter across θ.

use pulse_compiler::{CompileMode, Compiler};
use quant_char::tomography::{bloch_from_p0, Axis, BlochVector};
use quant_circuit::Circuit;
use quant_device::{PulseExecutor, ShotPool};
use quant_math::seeded;
use repro_bench::{p0_of_qubit, shot_noise, Setup};
use std::f64::consts::PI;

/// Noisy tomography of the state produced by compiling `prep` in `mode`.
fn tomograph(
    setup: &Setup,
    prep: &Circuit,
    mode: CompileMode,
    shots: usize,
    seed: u64,
) -> BlochVector {
    let mut rng = seeded(seed);
    let mut p0 = [0.0; 3];
    for (i, axis) in Axis::all().iter().enumerate() {
        let mut c = prep.clone();
        axis.append_rotation(&mut c, 0);
        let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
            .compile(&c)
            .unwrap();
        let exec = PulseExecutor::new(&setup.device);
        let out = exec.run(&compiled.program, &mut rng);
        let mitigated = setup.mitigator(1).mitigate(&out.probabilities);
        p0[i] = shot_noise(p0_of_qubit(&mitigated, 0), shots, &mut rng);
    }
    bloch_from_p0(p0)
}

fn main() {
    let setup = Setup::almaden(1, 505);
    let shots = 1000;
    let mut sum_err = [0.0_f64; 2];
    let mut durations = [0u64; 2];

    println!("Figure 5 — Rx(θ) fidelity, standard vs DirectRx (1000 shots/axis)\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "θ (deg)", "std infid.", "direct infid.", "winner"
    );
    // Sweep points carry per-index seeds, so the θ sweep fans across the
    // pool with results identical to the serial loop.
    let pool = ShotPool::from_env();
    let points = pool.map_indices(20, |i| {
        let k = i as u64 + 1;
        let theta = (i + 1) as f64 / 20.0 * PI;
        let mut prep = Circuit::new(1);
        prep.rx(0, theta);
        // Ideal Bloch vector of Rx(θ)|0⟩.
        let ideal = BlochVector {
            x: 0.0,
            y: -theta.sin(),
            z: theta.cos(),
        };
        let mut errs = [0.0; 2];
        let mut durs = [0u64; 2];
        for (m, mode) in [CompileMode::Standard, CompileMode::Optimized]
            .into_iter()
            .enumerate()
        {
            let b = tomograph(&setup, &prep, mode, shots, 7_000 + 10 * k + m as u64);
            errs[m] = 1.0 - b.fidelity(&ideal).clamp(0.0, 1.0);
            let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
                .compile(&prep)
                .unwrap();
            durs[m] = compiled.duration();
        }
        (theta, errs, durs)
    });
    let mut n = 0;
    for (theta, errs, durs) in points {
        sum_err[0] += errs[0];
        sum_err[1] += errs[1];
        durations = durs;
        n += 1;
        println!(
            "{:>7.1} {:>11.4}% {:>11.4}% {:>12}",
            theta.to_degrees(),
            100.0 * errs[0],
            100.0 * errs[1],
            if errs[1] < errs[0] {
                "direct"
            } else {
                "standard"
            }
        );
    }
    let mean_std = sum_err[0] / n as f64;
    let mean_dir = sum_err[1] / n as f64;
    println!(
        "\nmean infidelity: standard {:.4}%  direct {:.4}%  → {:.0}% lower error",
        100.0 * mean_std,
        100.0 * mean_dir,
        100.0 * (1.0 - mean_dir / mean_std)
    );
    println!(
        "rotation pulse duration: standard {} dt vs direct {} dt ({}x faster)",
        durations[0],
        durations[1],
        durations[0] as f64 / durations[1] as f64
    );
    println!("paper reference: 16% lower error on average, 2x faster");
}
