//! Figure 10: ZZ-interaction state fidelity — standard (CNOT·Rz·CNOT) vs
//! optimized (H·CR(θ)·H), for θ = 0°, 4.5°, …, 90° (21 points × 2 flows ×
//! 2000 shots = 84 k shots in the paper).
//!
//! Paper: mean fidelities 98.4 % (standard) vs 99.0 % (optimized) — a 60 %
//! error reduction for the single most common two-qubit primitive.

use pulse_compiler::{CompileMode, Compiler};
use quant_char::hellinger_fidelity;
use quant_circuit::Circuit;
use quant_device::PulseExecutor;
use quant_math::seeded;
use repro_bench::Setup;

fn main() {
    let setup = Setup::almaden(2, 1010);
    let shots = 2000;
    let mut rng = seeded(84_000);

    println!(
        "Figure 10 — ZZ(θ) state fidelity, standard vs optimized ({} points)\n",
        21
    );
    println!("{:>8} {:>10} {:>10}", "θ (deg)", "std fid.", "opt fid.");

    let mut mean = [0.0_f64; 2];
    for i in 0..21 {
        let theta = i as f64 * 4.5_f64.to_radians();
        // Benchmark circuit: prepare |++⟩, apply the interaction, rotate
        // back — sensitive to both the angle and the phases.
        let mut c = Circuit::new(2);
        c.h(0).h(1).zz(0, 1, theta).h(0).h(1);
        let ideal = c.output_distribution();
        let mut fids = [0.0; 2];
        for (m, mode) in [CompileMode::Standard, CompileMode::Optimized]
            .into_iter()
            .enumerate()
        {
            let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
                .compile(&c)
                .unwrap();
            let exec = PulseExecutor::new(&setup.device);
            let out = exec.run(&compiled.program, &mut rng);
            let counts = out.sample_counts(&mut rng, shots);
            let measured = quant_char::counts_to_distribution(&counts);
            let mitigated = setup.mitigator(2).mitigate(&measured);
            fids[m] = hellinger_fidelity(&ideal, &mitigated);
            mean[m] += fids[m] / 21.0;
        }
        println!(
            "{:>8.1} {:>9.2}% {:>9.2}%",
            theta.to_degrees(),
            100.0 * fids[0],
            100.0 * fids[1]
        );
    }
    let err_std = 1.0 - mean[0];
    let err_opt = 1.0 - mean[1];
    println!(
        "\nmean fidelity: standard {:.2}%  optimized {:.2}%",
        100.0 * mean[0],
        100.0 * mean[1]
    );
    println!(
        "error reduction: {:.0}% (paper: 60%; fidelities 98.4% vs 99.0%)",
        100.0 * (1.0 - err_opt / err_std)
    );
}
