//! Extension experiment: interleaved randomized benchmarking of the X
//! gate under both compilation flows.
//!
//! The paper's §4.1 claims DirectX is "twice as fast … and has 2× lower
//! error, as measured through quantum state tomography". Interleaved RB
//! (Magesan et al.) isolates exactly the interleaved gate's fidelity, so
//! this binary measures the per-X-gate error of the two-pulse standard X
//! versus the single-pulse DirectX directly.
//!
//! ```text
//! cargo run --release -p repro-bench --bin extra_directx_irb
//! ```

use pulse_compiler::{CompileMode, Compiler};
use quant_char::{interleaved_gate_fidelity, interleaved_rb_sequence, rb_sequence, RbData};
use quant_circuit::{Circuit, Gate};
use quant_device::PulseExecutor;
use quant_math::seeded;
use repro_bench::Setup;

fn survival(
    setup: &Setup,
    circuit: &Circuit,
    mode: CompileMode,
    shots: usize,
    rng: &mut rand::rngs::StdRng,
) -> f64 {
    let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
        .compile(circuit)
        .unwrap();
    let exec = PulseExecutor::new(&setup.device);
    let out = exec.run(&compiled.program, rng);
    let counts = out.sample_counts(rng, shots);
    counts[0] as f64 / shots as f64
}

fn decay(
    setup: &Setup,
    mode: CompileMode,
    interleave: Option<Gate>,
    lengths: &[usize],
    randomizations: usize,
    shots: usize,
) -> f64 {
    let mut survival_means = Vec::new();
    for &k in lengths {
        let mut total = 0.0;
        for r in 0..randomizations {
            let mut rng = seeded(77_000 + (k * 131 + r) as u64);
            let c = match interleave {
                Some(g) => interleaved_rb_sequence(k, g, &mut rng),
                None => rb_sequence(k, &mut rng),
            };
            total += survival(setup, &c, mode, shots, &mut rng);
        }
        survival_means.push(total / randomizations as f64);
    }
    RbData {
        lengths: lengths.to_vec(),
        survival: survival_means,
    }
    .fit()
    .f
}

fn main() {
    let setup = Setup::armonk(4242);
    let lengths: Vec<usize> = (1..=15).map(|i| 15 * i).collect();
    let randomizations = 5;
    let shots = 4000;

    println!("Interleaved RB of the X gate: standard (2 pulses) vs DirectX (1 pulse)");
    println!(
        "({} lengths to K = {}, {randomizations} randomizations, {shots} shots)\n",
        lengths.len(),
        lengths.last().unwrap()
    );

    let mut gate_errors = Vec::new();
    for (label, mode) in [
        ("standard", CompileMode::Standard),
        ("optimized", CompileMode::Optimized),
    ] {
        let f_ref = decay(&setup, mode, None, &lengths, randomizations, shots);
        let f_int = decay(&setup, mode, Some(Gate::X), &lengths, randomizations, shots);
        let f_gate = interleaved_gate_fidelity(f_ref, f_int);
        gate_errors.push(1.0 - f_gate);
        println!(
            "{label:<10} reference f = {:.4}%   interleaved f = {:.4}%   X-gate error = {:.4}%",
            100.0 * f_ref,
            100.0 * f_int,
            100.0 * (1.0 - f_gate)
        );
    }
    if gate_errors[1] > 0.0 {
        println!(
            "\nDirectX error is {:.1}x lower than the standard two-pulse X",
            gate_errors[0] / gate_errors[1]
        );
    }
    println!("paper reference: \"twice as fast … and 2x lower error\" (§4.1)");
}
