//! Extension experiment: pulse-stretch zero-noise extrapolation.
//!
//! The paper cites Garmon et al. (its ref. \[8\]) as the one prior use of
//! OpenPulse: *noise extrapolation*. The technique is pure pulse
//! arithmetic — stretch every pulse by λ ≥ 1 (recalibrating amplitudes so
//! the gates stay correct), measure an observable at several λ, and
//! Richardson-extrapolate to the zero-noise point λ → 0. Our calibration
//! already parameterizes pulse durations, so the whole experiment drops
//! out of existing machinery.
//!
//! Observable: the H₂ VQE energy at the optimal ansatz angle.
//!
//! ```text
//! cargo run --release -p repro-bench --bin extra_zne
//! ```

use pulse_compiler::{CompileMode, Compiler};
use quant_algos::{group_commuting, molecules, vqe};
use quant_char::{counts_to_distribution, Mitigator};
use quant_device::{Calibration, CalibrationOptions, DeviceModel, PulseExecutor};
use quant_math::{linear_least_squares, seeded};

/// Measures ⟨H⟩ with everything stretched by λ.
fn energy_at_stretch(
    device: &DeviceModel,
    lambda: f64,
    theta: f64,
    shots: usize,
    seed: u64,
) -> f64 {
    // Recalibrate with stretched single-qubit pulses; CR pulses stretch
    // through their σ and the re-solved flat-top width.
    let base = CalibrationOptions::default();
    let opts = CalibrationOptions {
        pulse_duration: (base.pulse_duration as f64 * lambda).round() as u64,
        pulse_sigma: base.pulse_sigma * lambda,
        cr_sigma: base.cr_sigma * lambda,
        cr_amp: base.cr_amp / lambda, // slower CR rate → longer flat top
        ..base
    };
    let mut rng = seeded(seed);
    let calibration = Calibration::run(device, &opts, &mut rng);
    // Readout mitigation (λ-independent, as in any real ZNE experiment —
    // extrapolation only removes noise that scales with the stretch).
    let mitigator = Mitigator::from_calibration(
        &[device.readout(0).p1_given_0, device.readout(1).p1_given_0],
        &[device.readout(0).p0_given_1, device.readout(1).p0_given_1],
    );

    let h = molecules::h2().hamiltonian;
    let identity: f64 = h
        .terms()
        .iter()
        .filter(|t| t.support().is_empty())
        .map(|t| t.coeff)
        .sum();
    let mut energy = identity;
    for group in group_commuting(&h) {
        let mut c = vqe::ucc_ansatz(theta);
        group.append_measurement_basis(&mut c);
        let compiled = Compiler::new(device, &calibration, CompileMode::Optimized)
            .compile(&c)
            .unwrap();
        let exec = PulseExecutor::new(device);
        let out = exec.run(&compiled.program, &mut rng);
        let counts = out.sample_counts(&mut rng, shots);
        let probs = mitigator.mitigate(&counts_to_distribution(&counts));
        energy += group.expectation_from_distribution(&probs);
    }
    energy
}

fn main() {
    let mut rng = seeded(777);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let h = molecules::h2().hamiltonian;
    let solved = vqe::solve(&h);
    let exact = h.ground_energy();
    let shots = 60_000;

    println!("Zero-noise extrapolation by pulse stretching (H2 VQE energy)\n");
    println!("exact ground energy: {exact:+.5} Ha\n");
    println!("{:>8} {:>14} {:>12}", "λ", "E(λ) [Ha]", "error [mHa]");

    let lambdas = [1.0, 1.5, 2.0, 2.5, 3.0];
    let mut energies = Vec::new();
    for &lambda in lambdas.iter() {
        // Same seed at every λ: the calibration residuals represent one
        // device state, and only the stretch varies.
        let e = energy_at_stretch(&device, lambda, solved.theta, shots, 9_000);
        energies.push(e);
        println!("{lambda:>8.2} {e:>+14.5} {:>+12.2}", 1000.0 * (e - exact));
    }

    // Richardson (linear) extrapolation to λ = 0.
    let design: Vec<Vec<f64>> = lambdas.iter().map(|&l| vec![l, 1.0]).collect();
    let beta = linear_least_squares(&design, &energies).expect("fit");
    let extrapolated = beta[1];
    println!(
        "\nlinear extrapolation to λ = 0: {extrapolated:+.5} Ha ({:+.2} mHa from exact)",
        1000.0 * (extrapolated - exact)
    );
    println!(
        "raw λ = 1 error was {:+.2} mHa; the extrapolation removes the \
         duration-scaled (decoherence) component. The remainder is the \
         λ-independent floor — SPAM and coherent calibration error — which \
         no stretch-based extrapolation can see.",
        1000.0 * (energies[0] - exact)
    );
}
