//! Figure 4: pulse schedules for the X gate — standard (two Rx90 pulses)
//! versus DirectX (one Rx180 pulse).
//!
//! Paper: standard X = 71.1 ns (320 dt), DirectX = 35.6 ns (160 dt); both
//! schedules have the same absolute area under the curve.

use pulse_compiler::{CompileMode, Compiler};
use quant_circuit::Circuit;
use quant_device::DT;
use quant_pulse::Instruction;
use repro_bench::Setup;

fn abs_area(program: &quant_device::LoweredProgram) -> f64 {
    program
        .schedule
        .instructions()
        .iter()
        .filter_map(|ti| match &ti.instruction {
            Instruction::Play { waveform, .. } => Some(waveform.abs_area()),
            _ => None,
        })
        .sum()
}

fn main() {
    let setup = Setup::almaden(1, 404);
    let mut c = Circuit::new(1);
    c.x(0);

    println!("Figure 4 — X-gate pulse schedules (standard vs DirectX)\n");
    for (label, mode) in [
        ("standard (U3 → 2×Rx90)", CompileMode::Standard),
        ("DirectX  (1×Rx180)", CompileMode::Optimized),
    ] {
        let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
            .compile(&c)
            .unwrap();
        let dur_dt = compiled.duration();
        let dur_ns = dur_dt as f64 * DT * 1e9;
        println!(
            "{label}\n  pulses: {}   duration: {dur_dt} dt = {dur_ns:.1} ns   |area|: {:.2} amp·dt",
            compiled.pulse_count(),
            abs_area(&compiled.program)
        );
        println!("{}", compiled.program.schedule.ascii_art(64));
    }
    println!("paper reference: 320 dt (71.1 ns) vs 160 dt (35.6 ns), equal areas");
}
