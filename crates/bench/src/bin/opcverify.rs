//! `opcverify`: static schedule verification over the benchmark corpus.
//!
//! Compiles every corpus circuit (no execution — this is the cheap,
//! CI-friendly half of the pipeline) in both compilation flows and runs
//! `pulse::verify` on each lowered schedule. Exit status is nonzero if
//! any schedule produces findings, so the invariant "everything the
//! compiler emits verifies clean" is pinned as a standing check.
//!
//! ```text
//! opcverify [--tier smoke|full] [--device-seed N]
//! ```

use pulse_compiler::CompileMode;
use quant_corpus::{compile_circuit, generate, Tier};
use quant_device::{calibrate, Calibration, DeviceModel};
use quant_math::{seeded, stream_seed};
use std::collections::BTreeMap;

fn die(msg: &str) -> ! {
    eprintln!("opcverify: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut tier = Tier::Full;
    let mut device_seed = 7u64;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tier" => {
                tier = match iter.next().as_deref() {
                    Some("smoke") => Tier::Smoke,
                    Some("full") => Tier::Full,
                    Some(other) => die(&format!("unknown tier `{other}`")),
                    None => die("--tier needs a value"),
                }
            }
            "--device-seed" => {
                device_seed = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => die("--device-seed needs an integer"),
                }
            }
            "--help" | "-h" => die("usage: opcverify [--tier smoke|full] [--device-seed N]"),
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    let entries = generate(tier);
    let mut backends: BTreeMap<u32, (DeviceModel, Calibration)> = BTreeMap::new();
    let mut schedules = 0usize;
    let mut total_findings = 0usize;
    for entry in &entries {
        let (device, calibration) = backends.entry(entry.width).or_insert_with(|| {
            let mut rng = seeded(stream_seed(device_seed, entry.width as u64));
            let device = DeviceModel::almaden_like(entry.width as usize, &mut rng);
            let calibration = calibrate(&device, &mut rng);
            (device, calibration)
        });
        let spec = device.verify_spec();
        for mode in [CompileMode::Standard, CompileMode::Optimized] {
            let cc = match compile_circuit(device, calibration, &entry.circuit, mode) {
                Ok(cc) => cc,
                Err(e) => {
                    eprintln!("opcverify: {} ({mode:?}): compile failed: {e}", entry.name);
                    std::process::exit(1);
                }
            };
            schedules += 1;
            let findings = quant_pulse::verify(&cc.compiled.program.schedule, &spec);
            if !findings.is_empty() {
                total_findings += findings.len();
                println!(
                    "FAIL {} ({mode:?}): {} finding(s)",
                    entry.name,
                    findings.len()
                );
                for f in &findings {
                    println!("  {f}");
                }
            }
        }
    }

    let tier_name = match tier {
        Tier::Smoke => "smoke",
        Tier::Full => "full",
    };
    if total_findings == 0 {
        println!(
            "opcverify: {schedules} schedule(s) across {} {tier_name}-tier circuit(s) \
             verify clean ({} static rules)",
            entries.len(),
            quant_pulse::VERIFY_RULES.len()
        );
    } else {
        println!(
            "opcverify: {total_findings} finding(s) across {schedules} schedule(s) \
             ({tier_name} tier)"
        );
        std::process::exit(1);
    }
}
