//! Extension experiment: does the paper's "the biggest benchmark gains the
//! most" trend continue past 5 qubits?
//!
//! Fig. 12's largest error reduction was the 5-qubit QAOA (2.32×). With
//! the trajectory executor we can push the same line-graph MAXCUT workload
//! to 8 qubits — beyond the exact density-matrix range — and watch the
//! standard-vs-optimized gap grow with circuit size.
//!
//! ```text
//! cargo run --release -p repro-bench --bin extra_qaoa_scaling
//! ```

use pulse_compiler::{CompileMode, Compiler};
use quant_algos::LineGraph;
use quant_char::{counts_to_distribution, hellinger_distance};
use quant_device::TrajectoryExecutor;
use quant_math::seeded;
use repro_bench::Setup;

fn main() {
    let trajectories = 32;
    println!("QAOA-MAXCUT error vs size (trajectory executor, {trajectories} trajectories)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>10}",
        "qubits", "std err", "opt err", "err red.", "opt cut/max"
    );

    for n in [4usize, 5, 6, 7, 8] {
        // Keep the per-outcome sampling floor flat across sizes: the
        // Hellinger noise floor scales like √(outcomes/shots).
        let shots = 2000 * (1 << n);
        let g = LineGraph::new(n);
        let circuit = repro_bench::qaoa_line_circuit(n, None);
        let ideal = circuit.output_distribution();
        let setup = Setup::almaden(n, 5_000 + n as u64);
        let mut errs = [0.0_f64; 2];
        let mut opt_cut = 0.0;
        for (m, mode) in [CompileMode::Standard, CompileMode::Optimized]
            .into_iter()
            .enumerate()
        {
            let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
                .compile(&circuit)
                .unwrap();
            let exec = TrajectoryExecutor::new(&setup.device, trajectories);
            let mut rng = seeded(6_000 + (n * 10 + m) as u64);
            let counts = exec.run(&compiled.program, shots, &mut rng);
            let measured = counts_to_distribution(&counts);
            let mitigated = setup.mitigator(n).mitigate(&measured);
            errs[m] = hellinger_distance(&ideal, &mitigated);
            if m == 1 {
                opt_cut = g.expected_cut(&mitigated);
            }
        }
        println!(
            "{:<8} {:>9.2}% {:>9.2}% {:>8.2}x {:>9.2}",
            n,
            100.0 * errs[0],
            100.0 * errs[1],
            errs[0] / errs[1],
            opt_cut / g.max_cut() as f64
        );
    }
    println!("\npaper reference: QAOA-4 and QAOA-5 are Fig. 12's two largest gains");
    println!("(1.x and 2.32x); the trend extends as circuits outgrow the device's");
    println!("coherence budget faster in the standard flow.");
}
