//! Figure 7: *experimental* DirectRx(θ) characterization — the same sweep
//! as Fig. 6 but on the noisy device with finite shots
//! (3 axes × 41 angles × 1000 shots = 123 k shots).
//!
//! Paper: compared with simulation, the X-deviation stays sinusoidal but
//! is translated and larger in magnitude; the resulting table is exactly
//! the data the compiler's empirical phase correction is built from.

use quant_char::tomography::{bloch_from_p0, Axis};
use quant_device::{PulseExecutor, ShotPool};
use quant_math::seeded;
use quant_pulse::{Channel, Instruction, Schedule};
use repro_bench::{ascii_series, shot_noise, Setup};

fn main() {
    let setup = Setup::almaden(1, 707);
    let shots = 1000;
    let base = setup.calibration.qubit(0).rx180_waveform("x");
    let exec = PulseExecutor::new(&setup.device);

    println!(
        "Figure 7 — experimental DirectRx(θ) characterization \
         (3×41×{shots} = {}k shots)\n",
        3 * 41 * shots / 1000
    );
    // One RNG stream per sweep point (`seed ^ index`) instead of a single
    // serial stream, so the 41 points fan out deterministically.
    let pool = ShotPool::from_env();
    let points = pool.map_indices(41, |i| {
        let mut rng = seeded(8_899 ^ i as u64);
        let s = i as f64 / 40.0;
        // Per-axis tomography at the pulse level: play the scaled pulse,
        // then the axis rotation via calibrated pulses.
        let mut p0 = [0.0; 3];
        for (a, axis) in Axis::all().iter().enumerate() {
            let mut sched = Schedule::new("tomo");
            if i > 0 {
                sched.append(Instruction::Play {
                    waveform: base.scaled(s),
                    channel: Channel::Drive(0),
                });
            }
            // Axis rotation: H ≈ Rz·Rx90·Rz; for this characterization use
            // the rx90 pulse with frame changes, mirroring the real
            // experiment's measurement pre-rotation.
            match axis {
                Axis::X => {
                    // measure ⟨X⟩: Ry(-90°) = Rz(-90)·Rx(90)·Rz(90)… use
                    // frame-wrapped rx90.
                    append_frame_rx90(&setup, &mut sched, -std::f64::consts::FRAC_PI_2);
                }
                Axis::Y => {
                    append_frame_rx90(&setup, &mut sched, 0.0);
                }
                Axis::Z => {}
            }
            let out = exec.run_qutrit(&sched, &mut rng);
            // Two-outcome readout: |2⟩ reads as 1.
            let p_read0 = out.populations[0];
            let r = setup.device.readout(0);
            let measured0 = p_read0 * (1.0 - r.p1_given_0) + (1.0 - p_read0) * r.p0_given_1;
            p0[a] = shot_noise(measured0, shots, &mut rng);
        }
        let b = bloch_from_p0(p0);
        (s * 180.0, b.x)
    });
    let (angles, xdevs): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();

    // The Z-measured populations trace the rotation; print the X-deviation.
    let max_dev = xdevs.iter().fold(0.0_f64, |m, &v| m.max(v.abs())).max(1e-3);
    println!(
        "{}",
        ascii_series(
            "measured X-deviation vs θ (degrees):",
            &angles,
            &xdevs,
            (-max_dev, max_dev)
        )
    );
    println!("max |X-deviation| = {max_dev:.4}");
    println!(
        "paper reference: sinusoidal, translated and larger than simulation \
         (Fig. 6); used as the phase-correction lookup"
    );
}

/// Appends a frame-shifted rx90 pulse (tomography pre-rotation about the
/// axis at angle `phase` in the equator).
fn append_frame_rx90(setup: &Setup, sched: &mut Schedule, phase: f64) {
    let ch = Channel::Drive(0);
    sched.append(Instruction::ShiftPhase { phase, channel: ch });
    sched.append(Instruction::Play {
        waveform: setup.calibration.qubit(0).rx90_waveform("rx90"),
        channel: ch,
    });
    sched.append(Instruction::ShiftPhase {
        phase: -phase,
        channel: ch,
    });
}
