//! Figure 11: the base-3 qutrit counter (paper §7).
//!
//! Left panel: IQ readout clouds for |0⟩/|1⟩/|2⟩ and the trained linear
//! discriminant. Right panel: fraction of shots found in the ground state
//! after n full cycles (3 hops each). Paper: 60 cycles (180 hops) before
//! "dropout" exceeds 40 %; 150 k total shots.

use quant_algos::{calibrate_qutrit, counter_schedule};
use quant_char::Lda;
use quant_device::PulseExecutor;
use quant_math::seeded;
use repro_bench::Setup;

fn main() {
    let mut setup = Setup::almaden(1, 1111);
    let mut rng = seeded(150_000);
    // The counter experiment ran right after its own tune-up (§7.2), so
    // the systematic drift is small; the dominant imperfection the paper
    // reports is *stochastic* microwave control noise, which is larger for
    // the frequency-shifted f12/f02 pulses than for the heavily averaged
    // standard gates. Model both.
    setup.device.set_drift(
        quant_device::DriftParams {
            cal_amp_sigma: 0.0012,
            drift_per_hour: 0.0012,
            hours_since_cal: 0.5,
        },
        &mut rng,
    );
    setup.device.set_pulse_amp_jitter(6.0e-3);
    let pulses = calibrate_qutrit(&setup.device, &setup.calibration);
    let shots_per_point = 1000;

    // --- IQ calibration + LDA training (left panel) --------------------
    let mut train_pts = Vec::new();
    let mut train_lbl = Vec::new();
    for level in 0..3usize {
        for _ in 0..1500 {
            train_pts.push(quant_device::readout::sample_iq(
                setup.device.readout(0),
                level,
                &mut rng,
            ));
            train_lbl.push(level);
        }
    }
    let lda = Lda::train(&train_pts, &train_lbl, 3);
    let acc = lda.accuracy(&train_pts, &train_lbl);
    println!("Figure 11 — base-3 qutrit counter");
    println!(
        "\nIQ discriminator: 3 classes × 1500 calibration shots, accuracy {:.1}%",
        100.0 * acc
    );
    for (level, c) in [
        setup.device.readout(0).iq0,
        setup.device.readout(0).iq1,
        setup.device.readout(0).iq2,
    ]
    .iter()
    .enumerate()
    {
        println!("  |{level}⟩ cloud centroid ≈ ({:+.2}, {:+.2})", c.0, c.1);
    }

    // --- Counter sweep (right panel) ------------------------------------
    println!("\n{:>7} {:>7} {:>12}", "cycles", "hops", "P(ground)");
    let exec = PulseExecutor::new(&setup.device);
    let mut dropout_cycle = None;
    let trajectories = 16;
    for cycles in [1usize, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80] {
        let schedule = counter_schedule(&pulses, cycles);
        // The stochastic control noise draws fresh jitter per pulse per
        // run: average the ensemble over several trajectories.
        let mut populations = vec![0.0; 3];
        for _ in 0..trajectories {
            let out = exec.run_qutrit(&schedule, &mut rng);
            for (acc, p) in populations.iter_mut().zip(&out.populations) {
                *acc += p / trajectories as f64;
            }
        }
        let out = quant_device::QutritOutcome {
            populations,
            duration: schedule.duration(),
        };
        // Classify simulated IQ shots with the trained discriminator.
        let iq_shots = out.sample_iq_shots(&setup.device, &mut rng, shots_per_point);
        let ground = iq_shots
            .iter()
            .filter(|(pt, _)| lda.classify(*pt) == 0)
            .count() as f64
            / shots_per_point as f64;
        println!("{cycles:>7} {:>7} {:>11.1}%", 3 * cycles, 100.0 * ground);
        if ground < 0.6 && dropout_cycle.is_none() {
            dropout_cycle = Some(cycles);
        }
    }
    match dropout_cycle {
        Some(c) => println!("\ndropout exceeds 40% around {c} cycles ({} hops)", 3 * c),
        None => println!("\ndropout stayed below 40% through 80 cycles"),
    }
    println!("paper reference: 60 cycles (180 hops) before dropout exceeds 40%");
}
