//! Ablation: which noise mechanism pays for which optimization?
//!
//! §8.3 of the paper attributes the fidelity gains to (1) shorter pulses
//! (less decoherence), (2) fewer calibrated pulses (less calibration-error
//! exposure), and (3) smaller amplitudes (less leakage). Our simulator lets
//! us do what hardware cannot: switch the mechanisms off one at a time and
//! rerun the comparison. For each configuration we report the
//! standard-vs-optimized Hellinger errors on a ZZ-heavy benchmark.
//!
//! ```text
//! cargo run --release -p repro-bench --bin ablation_sources
//! ```

use pulse_compiler::{CompileMode, Compiler};
use quant_char::hellinger_distance;
use quant_circuit::Circuit;
use quant_device::{calibrate, DeviceModel, DriftParams, PulseExecutor};
use quant_math::seeded;

fn benchmark_circuit() -> Circuit {
    // Three textbook ZZ layers with mixers — QAOA-flavoured.
    let mut c = Circuit::new(3);
    for q in 0..3 {
        c.h(q);
    }
    for _ in 0..2 {
        for e in 0..2u32 {
            c.cnot(e, e + 1).rz(e + 1, 0.9).cnot(e, e + 1);
        }
        for q in 0..3 {
            c.rx(q, 0.7);
        }
    }
    c
}

struct Config {
    name: &'static str,
    drift: bool,
    jitter: bool,
    decoherence: bool,
    spam_readout: bool,
}

fn main() {
    let configs = [
        Config {
            name: "full noise model",
            drift: true,
            jitter: true,
            decoherence: true,
            spam_readout: true,
        },
        Config {
            name: "no calibration drift",
            drift: false,
            jitter: true,
            decoherence: true,
            spam_readout: true,
        },
        Config {
            name: "no pulse jitter",
            drift: true,
            jitter: false,
            decoherence: true,
            spam_readout: true,
        },
        Config {
            name: "no decoherence",
            drift: true,
            jitter: true,
            decoherence: false,
            spam_readout: true,
        },
        Config {
            name: "no SPAM/readout",
            drift: true,
            jitter: true,
            decoherence: true,
            spam_readout: false,
        },
        Config {
            name: "coherent sources only",
            drift: true,
            jitter: true,
            decoherence: false,
            spam_readout: false,
        },
        Config {
            name: "decoherence only",
            drift: false,
            jitter: false,
            decoherence: true,
            spam_readout: false,
        },
    ];
    let circuit = benchmark_circuit();
    let ideal = circuit.output_distribution();

    println!("Ablation — noise mechanisms vs optimization gains (3q ZZ benchmark)\n");
    println!(
        "{:<24} {:>10} {:>10} {:>9}",
        "configuration", "std err", "opt err", "err red."
    );
    for (i, cfg) in configs.iter().enumerate() {
        let mut rng = seeded(3_000 + i as u64);
        let mut device = DeviceModel::almaden_like(3, &mut rng);
        if !cfg.drift {
            device.set_drift(DriftParams::ideal(), &mut rng);
        }
        if !cfg.jitter {
            device.set_pulse_amp_jitter(0.0);
        }
        if !cfg.decoherence {
            // Replace with an effectively decoherence-free twin: rebuild
            // from the ideal preset but keep the other knobs.
            let mut fresh = DeviceModel::ideal(3);
            if cfg.drift {
                fresh.set_drift(DriftParams::almaden_like(), &mut rng);
            }
            fresh.set_pulse_amp_jitter(if cfg.jitter { 6.0e-4 } else { 0.0 });
            if cfg.spam_readout {
                fresh.set_reset_excited_prob(0.012);
            }
            device = fresh;
        }
        if !cfg.spam_readout {
            device.set_reset_excited_prob(0.0);
        }
        let cal = calibrate(&device, &mut rng);
        let mut errs = [0.0_f64; 2];
        for (m, mode) in [CompileMode::Standard, CompileMode::Optimized]
            .into_iter()
            .enumerate()
        {
            let compiled = Compiler::new(&device, &cal, mode)
                .compile(&circuit)
                .unwrap();
            let exec = PulseExecutor::new(&device);
            // Average a few drift/jitter realizations.
            let mut dist = vec![0.0; ideal.len()];
            let runs = 6;
            for _ in 0..runs {
                let out = exec.run(&compiled.program, &mut rng);
                let probs = if cfg.spam_readout {
                    out.probabilities
                } else {
                    out.true_probabilities
                };
                for (d, p) in dist.iter_mut().zip(&probs) {
                    *d += p / runs as f64;
                }
            }
            errs[m] = hellinger_distance(&ideal, &dist);
        }
        println!(
            "{:<24} {:>9.2}% {:>9.2}% {:>8.2}x",
            cfg.name,
            100.0 * errs[0],
            100.0 * errs[1],
            errs[0] / errs[1].max(1e-9)
        );
    }
    println!("\nReading: decoherence (duration-scaled) is the mechanism the paper's");
    println!("shorter schedules attack; drift/jitter exposure falls with pulse count;");
    println!("SPAM/readout residuals are flow-independent and cap the achievable gain.");
}
