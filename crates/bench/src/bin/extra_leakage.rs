//! Extension experiment: leakage vs pulse amplitude — §8.3's third
//! fidelity source, measured rather than asserted.
//!
//! The paper argues that smaller/stretched pulse amplitudes reduce leakage
//! to |2⟩ ("smaller spectral components"), and §7 notes that qutrit
//! readout can *detect* leakage directly. Here we do exactly that: drive X
//! pulses of equal area but different (amplitude, duration) trade-offs,
//! read the transmon as a qutrit through the IQ discriminator, and report
//! the measured |2⟩ population — with and without DRAG.
//!
//! ```text
//! cargo run --release -p repro-bench --bin extra_leakage
//! ```

use quant_char::Lda;
use quant_device::{readout, DriveState, DT};
use quant_math::seeded;
use quant_pulse::Drag;
use repro_bench::Setup;

fn main() {
    let setup = Setup::almaden(1, 3131);
    let transmon = setup.device.transmon_cal(0);
    let mut rng = seeded(64_000);
    let shots = 4000;

    // Train the qutrit discriminator.
    let mut pts = Vec::new();
    let mut lbl = Vec::new();
    for level in 0..3usize {
        for _ in 0..1500 {
            pts.push(readout::sample_iq(setup.device.readout(0), level, &mut rng));
            lbl.push(level);
        }
    }
    let lda = Lda::train(&pts, &lbl, 3);

    println!("Leakage to |2⟩ vs X-pulse amplitude (equal rotation, qutrit readout)\n");
    println!(
        "{:>9} {:>9} {:>13} {:>13} {:>13}",
        "duration", "peak amp", "true plain", "true DRAG", "measured"
    );

    // Equal-area π pulses: shorter duration ⇒ higher amplitude.
    let reference = setup.calibration.qubit(0).rx180.amp * 160.0;
    for duration in [64u64, 80, 96, 128, 160, 224] {
        let sigma = duration as f64 / 4.0;
        // Solve amp for a π rotation (area conservation, then a refinement
        // against the integrated angle).
        let mut amp = (reference / duration as f64).min(0.95);
        for _ in 0..3 {
            let w = Drag {
                duration,
                amp,
                sigma,
                beta: 0.0,
            }
            .waveform("probe");
            let mut st = DriveState::default();
            let u = transmon.integrate_play(&mut st, &w);
            let (_, theta, _) = quant_sim::euler_zxz(&qubit_block(&u));
            if theta > 1e-6 {
                amp = (amp * std::f64::consts::PI / theta).min(0.95);
            }
        }
        // β ≈ −1/α is a constant time scale, independent of pulse duration.
        let beta_drag = setup.calibration.qubit(0).rx180.beta;
        let mut true_leak = [0.0_f64; 2];
        for (i, beta) in [0.0, beta_drag].into_iter().enumerate() {
            let w = Drag {
                duration,
                amp: amp.min(0.999),
                sigma,
                beta,
            }
            .waveform("x");
            let mut st = DriveState::default();
            let u = transmon.integrate_play(&mut st, &w);
            true_leak[i] = u[(2, 0)].norm_sqr();
        }
        // Measured P(|2⟩) for the plain pulse, through the IQ clouds: real
        // leakage detection fights the discriminator's assignment floor.
        let mut measured2 = 0usize;
        for _ in 0..shots {
            let level = if rng_gen(&mut rng) < true_leak[0] {
                2
            } else {
                1
            };
            let pt = readout::sample_iq(setup.device.readout(0), level, &mut rng);
            if lda.classify(pt) == 2 {
                measured2 += 1;
            }
        }
        println!(
            "{:>6.0} ns {:>9.3} {:>12.3e} {:>12.3e} {:>12.3}%",
            duration as f64 * DT * 1e9,
            amp,
            true_leak[0],
            true_leak[1],
            100.0 * measured2 as f64 / shots as f64
        );
    }
    println!("\nTrue leakage falls ~two orders of magnitude from the strongest to the");
    println!("weakest pulse — §8.3's source 3 (smaller amplitudes, smaller spectral");
    println!("components). At these calibrated amplitudes the lifted envelopes are");
    println!("already spectrally clean, so DRAG is neutral; its large wins appear at");
    println!("extreme amplitudes (see `drag_suppresses_leakage` in quant-device).");
    println!("The *measured* column shows why hardware needs dedicated protocols:");
    println!("the ~1% qutrit-readout assignment floor masks leakage this small.");
}

fn qubit_block(u: &quant_math::CMat) -> quant_math::CMat {
    quant_math::CMat::from_rows(&[&[u[(0, 0)], u[(0, 1)]], &[u[(1, 0)], u[(1, 1)]]])
}

fn rng_gen(rng: &mut rand::rngs::StdRng) -> f64 {
    use rand::Rng;
    rng.gen()
}
