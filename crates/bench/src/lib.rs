//! Shared harness for the experiment binaries.
//!
//! Every binary in this crate regenerates one of the paper's tables or
//! figures (see DESIGN.md §3 for the index). This library provides the
//! common setup — an Almaden-like device with its daily calibration — and
//! the standard run path: compile (standard or optimized), execute with
//! the full noise model, sample shots, mitigate readout, compare to ideal.

use pulse_compiler::{CompileMode, Compiler};
use quant_algos::LineGraph;
use quant_char::{counts_to_distribution, hellinger_distance, Mitigator};
use quant_circuit::Circuit;
use quant_device::{
    calibrate, Calibration, DeviceModel, PulseExecutor, ShotPool, TrajectoryExecutor,
};
use quant_math::seeded;
use rand::rngs::StdRng;
use rand::Rng;

pub mod json;
pub mod timing;

/// A calibrated simulated backend.
pub struct Setup {
    /// The device model.
    pub device: DeviceModel,
    /// The daily calibration.
    pub calibration: Calibration,
}

impl Setup {
    /// Almaden-like chain of `n` qubits with a fixed seed.
    pub fn almaden(n: usize, seed: u64) -> Self {
        let mut rng = seeded(seed);
        let device = DeviceModel::almaden_like(n, &mut rng);
        let calibration = calibrate(&device, &mut rng);
        Setup {
            device,
            calibration,
        }
    }

    /// Armonk-like single qubit.
    pub fn armonk(seed: u64) -> Self {
        let mut rng = seeded(seed);
        let device = DeviceModel::armonk_like(&mut rng);
        let calibration = calibrate(&device, &mut rng);
        Setup {
            device,
            calibration,
        }
    }

    /// A drift-free, readout-perfect device (pulse physics only).
    pub fn ideal(n: usize, seed: u64) -> Self {
        let device = DeviceModel::ideal(n);
        let mut rng = seeded(seed);
        let calibration = calibrate(&device, &mut rng);
        Setup {
            device,
            calibration,
        }
    }

    /// The readout mitigator as the paper built it: confusion parameters
    /// *estimated* from finite-shot calibration runs (here 2048 shots per
    /// basis state) **hours before the job ran** — so the correction is
    /// imperfect both statistically and because readout drifts between the
    /// mitigation calibration and the run.
    pub fn mitigator(&self, n: usize) -> Mitigator {
        let cal_shots = 2048;
        let readout_drift = 0.008; // absolute drift of assignment errors
        let mut rng = seeded(0xC0FFEE);
        let mut est = |p: f64| -> f64 {
            let sigma = (p * (1.0 - p) / cal_shots as f64).sqrt();
            (p + quant_math::normal(&mut rng, 0.0, sigma)
                + quant_math::normal(&mut rng, 0.0, readout_drift))
            .clamp(1e-4, 0.5)
        };
        let mut e0 = Vec::new();
        let mut e1 = Vec::new();
        for q in 0..n as u32 {
            e0.push(est(self.device.readout(q).p1_given_0));
            e1.push(est(self.device.readout(q).p0_given_1));
        }
        Mitigator::from_calibration(&e0, &e1)
    }
}

/// The depth-1 line-graph MAXCUT QAOA circuit shared by the perfsuite
/// trajectory rows and the `extra_qaoa_scaling` experiment.
///
/// With `angles = None` the `(γ, β)` pair is optimized on the ideal
/// simulator ([`LineGraph::solve_p1`] — an exponential-cost state-vector
/// search, tractable through ~8 qubits); fixed angles keep the 12–20-qubit
/// perfsuite workloads off the solve, whose quality is irrelevant to a
/// wall-clock row.
pub fn qaoa_line_circuit(n: usize, angles: Option<(f64, f64)>) -> Circuit {
    let g = LineGraph::new(n);
    let angles = angles.unwrap_or_else(|| g.solve_p1().0);
    g.qaoa_circuit(&[angles])
}

/// Builds a mitigator the fully empirical way: prepare each single-qubit
/// basis state through the compiler (|1⟩ via an X gate), run it on the
/// noisy executor, and estimate the per-qubit confusion probabilities from
/// the measured counts — the actual protocol behind the paper's
/// measurement-error mitigation, SPAM contamination included.
pub fn measured_mitigator(
    setup: &Setup,
    n: usize,
    cal_shots: usize,
    rng: &mut StdRng,
) -> Mitigator {
    let exec = PulseExecutor::new(&setup.device);
    let mut e0 = Vec::with_capacity(n);
    let mut e1 = Vec::with_capacity(n);
    for q in 0..n as u32 {
        // Prepared |0⟩: an empty program.
        let idle = Compiler::new(&setup.device, &setup.calibration, CompileMode::Optimized)
            .compile(&Circuit::new(n as u32))
            .expect("compile idle");
        let out = exec.run(&idle.program, rng);
        let counts = out.sample_counts(rng, cal_shots);
        let ones: u64 = counts
            .iter()
            .enumerate()
            .filter(|(idx, _)| (idx >> q) & 1 == 1)
            .map(|(_, &c)| c)
            .sum();
        e0.push((ones as f64 / cal_shots as f64).clamp(1e-4, 0.5));

        // Prepared |1⟩ on qubit q.
        let mut c = Circuit::new(n as u32);
        c.x(q);
        let prep = Compiler::new(&setup.device, &setup.calibration, CompileMode::Optimized)
            .compile(&c)
            .expect("compile prep");
        let out = exec.run(&prep.program, rng);
        let counts = out.sample_counts(rng, cal_shots);
        let zeros: u64 = counts
            .iter()
            .enumerate()
            .filter(|(idx, _)| (idx >> q) & 1 == 0)
            .map(|(_, &c)| c)
            .sum();
        e1.push((zeros as f64 / cal_shots as f64).clamp(1e-4, 0.5));
    }
    Mitigator::from_calibration(&e0, &e1)
}

/// Result of one compiled, noisy, mitigated run.
pub struct RunResult {
    /// Mitigated empirical distribution.
    pub distribution: Vec<f64>,
    /// Schedule duration in `dt`.
    pub duration: u64,
    /// Pulses played.
    pub pulse_count: usize,
}

/// Compiles and runs a circuit with the full noise model, sampling `shots`
/// and applying readout mitigation.
pub fn run_noisy(
    setup: &Setup,
    circuit: &Circuit,
    mode: CompileMode,
    shots: usize,
    rng: &mut StdRng,
) -> RunResult {
    let compiled = Compiler::new(&setup.device, &setup.calibration, mode)
        .compile(circuit)
        .expect("compile failed");
    let exec = PulseExecutor::new(&setup.device);
    let out = exec.run(&compiled.program, rng);
    let counts = out.sample_counts(rng, shots);
    let measured = counts_to_distribution(&counts);
    let mitigated = setup
        .mitigator(circuit.num_qubits() as usize)
        .mitigate(&measured);
    RunResult {
        distribution: mitigated,
        duration: compiled.duration(),
        pulse_count: compiled.pulse_count(),
    }
}

/// Standard-vs-optimized comparison on one benchmark circuit.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Hellinger error of the standard flow.
    pub error_standard: f64,
    /// Hellinger error of the optimized flow.
    pub error_optimized: f64,
    /// Duration (dt) of the standard schedule.
    pub duration_standard: u64,
    /// Duration (dt) of the optimized schedule.
    pub duration_optimized: u64,
}

impl Comparison {
    /// Error-reduction factor (standard / optimized).
    pub fn error_reduction(&self) -> f64 {
        self.error_standard / self.error_optimized
    }

    /// Speedup factor.
    pub fn speedup(&self) -> f64 {
        self.duration_standard as f64 / self.duration_optimized as f64
    }
}

/// `run_noisy` for registers past the density wall: compiles and runs the
/// circuit through the stochastic trajectory executor (gate fusion and the
/// reference-path routing follow the executor's `OPC_FUSION` contract),
/// samples `shots` with readout noise, and applies the same mitigation.
/// The counts depend only on `(program, shots, root)` — never on `pool`.
pub fn run_noisy_trajectory(
    setup: &Setup,
    circuit: &Circuit,
    mode: CompileMode,
    trajectories: usize,
    shots: usize,
    root: u64,
    pool: &ShotPool,
) -> RunResult {
    let compiled = match Compiler::new(&setup.device, &setup.calibration, mode).compile(circuit) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("repro-bench: trajectory compile failed: {e:?}");
            std::process::exit(1);
        }
    };
    let counts = match TrajectoryExecutor::new(&setup.device, trajectories).try_run_pooled(
        &compiled.program,
        shots,
        root,
        pool,
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("repro-bench: trajectory run failed: {e}");
            std::process::exit(1);
        }
    };
    let measured = counts_to_distribution(&counts);
    let mitigated = setup
        .mitigator(circuit.num_qubits() as usize)
        .mitigate(&measured);
    RunResult {
        distribution: mitigated,
        duration: compiled.duration(),
        pulse_count: compiled.pulse_count(),
    }
}

/// Runs a benchmark circuit through both flows and scores each against the
/// ideal distribution.
pub fn compare_flows(setup: &Setup, circuit: &Circuit, shots: usize, seed: u64) -> Comparison {
    let ideal = circuit.output_distribution();
    let mut rng = seeded(seed);
    let std = run_noisy(setup, circuit, CompileMode::Standard, shots, &mut rng);
    let opt = run_noisy(setup, circuit, CompileMode::Optimized, shots, &mut rng);
    Comparison {
        error_standard: hellinger_distance(&ideal, &std.distribution),
        error_optimized: hellinger_distance(&ideal, &opt.distribution),
        duration_standard: std.duration,
        duration_optimized: opt.duration,
    }
}

/// `compare_flows` for wide registers: both flows run through the
/// trajectory executor on the same root, so the standard-vs-optimized
/// comparison reaches the 10–16-qubit linear topologies the exact density
/// path cannot hold.
pub fn compare_flows_trajectory(
    setup: &Setup,
    circuit: &Circuit,
    trajectories: usize,
    shots: usize,
    root: u64,
    pool: &ShotPool,
) -> Comparison {
    let ideal = circuit.output_distribution();
    let std = run_noisy_trajectory(
        setup,
        circuit,
        CompileMode::Standard,
        trajectories,
        shots,
        root,
        pool,
    );
    let opt = run_noisy_trajectory(
        setup,
        circuit,
        CompileMode::Optimized,
        trajectories,
        shots,
        root.wrapping_add(1),
        pool,
    );
    Comparison {
        error_standard: hellinger_distance(&ideal, &std.distribution),
        error_optimized: hellinger_distance(&ideal, &opt.distribution),
        duration_standard: std.duration,
        duration_optimized: opt.duration,
    }
}

/// Estimates P(qubit = 0) from a distribution for one qubit index.
pub fn p0_of_qubit(probs: &[f64], qubit: usize) -> f64 {
    probs
        .iter()
        .enumerate()
        .filter(|(idx, _)| (idx >> qubit) & 1 == 0)
        .map(|(_, &p)| p)
        .sum()
}

/// Adds binomial sampling noise to a probability given a shot count.
pub fn shot_noise(p: f64, shots: usize, rng: &mut impl Rng) -> f64 {
    let sigma = (p.clamp(0.0, 1.0) * (1.0 - p.clamp(0.0, 1.0)) / shots as f64).sqrt();
    (p + quant_math::normal(rng, 0.0, sigma)).clamp(0.0, 1.0)
}

/// A named experiment record for machine-readable result dumps.
#[derive(Clone, Debug)]
pub struct ExperimentRecord {
    /// Benchmark/experiment name.
    pub name: String,
    /// The standard-vs-optimized comparison.
    pub comparison: Comparison,
}

/// Writes experiment records as pretty JSON next to the text outputs.
pub fn write_json(path: &str, records: &[ExperimentRecord]) -> std::io::Result<()> {
    let items: Vec<json::Json> = records
        .iter()
        .map(|r| {
            json::object([
                ("name", json::string(&r.name)),
                (
                    "comparison",
                    json::object([
                        ("error_standard", json::number(r.comparison.error_standard)),
                        (
                            "error_optimized",
                            json::number(r.comparison.error_optimized),
                        ),
                        (
                            "duration_standard",
                            json::number(r.comparison.duration_standard as f64),
                        ),
                        (
                            "duration_optimized",
                            json::number(r.comparison.duration_optimized as f64),
                        ),
                    ]),
                ),
            ])
        })
        .collect();
    std::fs::write(path, json::array(items).pretty())
}

/// Renders a simple ASCII series plot (one row per sample).
pub fn ascii_series(title: &str, xs: &[f64], ys: &[f64], y_range: (f64, f64)) -> String {
    let mut out = format!("{title}\n");
    let width = 60usize;
    for (x, y) in xs.iter().zip(ys) {
        let frac = ((y - y_range.0) / (y_range.1 - y_range.0)).clamp(0.0, 1.0);
        let pos = (frac * (width - 1) as f64).round() as usize;
        let mut row = vec![b' '; width];
        row[pos] = b'*';
        out.push_str(&format!(
            "{x:>8.3} |{}| {y:.4}\n",
            String::from_utf8_lossy(&row)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p0_extraction() {
        // 2-qubit distribution: p(q0=0) = p[0] + p[2].
        let probs = [0.1, 0.2, 0.3, 0.4];
        assert!((p0_of_qubit(&probs, 0) - 0.4).abs() < 1e-12);
        assert!((p0_of_qubit(&probs, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn measured_mitigator_estimates_confusion() {
        let setup = Setup::almaden(1, 9090);
        let mut rng = seeded(91);
        let m = measured_mitigator(&setup, 1, 8000, &mut rng);
        // Forward-applying the estimated confusion to a pure |0⟩ should
        // land near the device's true readout error (plus SPAM).
        let noisy = m.apply_forward(&[1.0, 0.0]);
        let truth = setup.device.readout(0).p1_given_0 + setup.device.reset_excited_prob();
        assert!(
            (noisy[1] - truth).abs() < 0.02,
            "estimated {:.4} vs true-ish {truth:.4}",
            noisy[1]
        );
    }

    #[test]
    fn comparison_math() {
        let c = Comparison {
            error_standard: 0.3,
            error_optimized: 0.15,
            duration_standard: 2000,
            duration_optimized: 1000,
        };
        assert!((c.error_reduction() - 2.0).abs() < 1e-12);
        assert!((c.speedup() - 2.0).abs() < 1e-12);
    }
}
