//! Plain wall-clock timing harness for the bench targets and the perf
//! suite (the environment is offline, so no criterion).

use std::time::Instant;

/// One timed benchmark result.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Iterations measured (after one warm-up iteration).
    pub iters: u32,
    /// Mean wall-clock per iteration, milliseconds.
    pub mean_ms: f64,
    /// Fastest iteration, milliseconds.
    pub min_ms: f64,
}

/// Times `f` over `iters` iterations (plus one untimed warm-up) and prints
/// a one-line report.
pub fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) -> Sample {
    assert!(iters > 0, "need at least one iteration");
    f(); // warm-up: touch caches, fault in code pages
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        total += ms;
        min = min.min(ms);
    }
    let sample = Sample {
        name: name.to_string(),
        iters,
        mean_ms: total / iters as f64,
        min_ms: min,
    };
    println!(
        "{:<40} {:>10.3} ms/iter (min {:>10.3} ms, {} iters)",
        sample.name, sample.mean_ms, sample.min_ms, sample.iters
    );
    sample
}

/// Times one run of `f`, returning (result, wall-clock milliseconds).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Times `runs` runs of `f`, returning the last result and the fastest
/// wall-clock (milliseconds). The minimum is the standard noise-robust
/// statistic on shared/virtualized machines, where the mean absorbs
/// scheduler interference.
pub fn time_best<T>(runs: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(runs > 0, "need at least one run");
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..runs {
        let (v, ms) = time_once(&mut f);
        best = best.min(ms);
        out = Some(v);
    }
    (out.unwrap(), best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_times() {
        let s = bench("busy_loop", 3, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        });
        assert!(s.mean_ms >= s.min_ms);
        assert!(s.min_ms >= 0.0);
        assert_eq!(s.iters, 3);
    }

    #[test]
    fn time_once_returns_result() {
        let (v, ms) = time_once(|| 42);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
