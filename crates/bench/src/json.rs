//! Minimal JSON value + pretty printer for machine-readable result dumps.
//!
//! The environment is offline (no serde), and the bench harness only ever
//! *writes* JSON — a small value tree with a deterministic pretty printer
//! covers everything `write_json` and the perf suite need.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Convenience constructor for a string value.
pub fn string(s: &str) -> Json {
    Json::String(s.to_string())
}

/// Convenience constructor for a number value.
pub fn number(x: f64) -> Json {
    Json::Number(x)
}

/// Convenience constructor for an array value.
pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
    Json::Array(items.into_iter().collect())
}

/// Convenience constructor for an object value (insertion-ordered).
pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_number(x: f64) -> String {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

impl Json {
    fn write(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => out.push_str(&format_number(*x)),
            Json::String(s) => escape(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    escape(k, out);
                    out.push_str(": ");
                    v.write(indent + 1, out);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(0, &mut out);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = array([object([
            ("name", string("fig12")),
            ("wall_ms", number(123.5)),
            ("threads", number(8.0)),
        ])]);
        let text = v.pretty();
        assert!(text.contains("\"name\": \"fig12\""));
        assert!(text.contains("\"wall_ms\": 123.5"));
        assert!(text.contains("\"threads\": 8"));
        assert!(text.ends_with("]\n"));
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        escape("a\"b\\c\nd", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(format_number(8000.0), "8000");
        assert_eq!(format_number(0.25), "0.25");
        assert_eq!(format_number(f64::NAN), "null");
    }
}
