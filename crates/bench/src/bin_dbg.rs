use quant_device::device::DeviceModel;
use quant_device::calibration::calibrate;
use quant_pulse::Channel;
use quant_sim::gates;

fn main() {
    let device = DeviceModel::ideal(1);
    let mut rng = quant_math::seeded(9);
    let cal = calibrate(&device, &mut rng);
    let q = cal.qubit(0);
    println!("amp180={} beta={} phases={:?} {:?}", q.rx180.amp, q.rx180.beta, q.rx180_phase, q.rx90_phase);
    let t = device.transmon_cal(0);
    let r = t.integrate_waveform(&q.rx180.waveform("x"));
    println!("U raw:\n{:?}", r.unitary);
    let (a, th, c) = quant_sim::euler_zxz(&r.qubit_block());
    println!("euler: a={a} th={th} c={c}  (pi={})", std::f64::consts::PI);
    let s = cal.cmd_def().get("rx180", &[0]).unwrap();
    let rc = t.integrate(s, Channel::Drive(0));
    println!("corrected diff to X = {}", rc.qubit_block().phase_invariant_diff(&gates::x()));
    println!("leak = {}", r.leakage_from_ground());
}
