//! Timing benchmarks for the compiler itself: pass pipeline, basis
//! translation, full compilation, routing, and the two-qubit decomposer.
//!
//! Plain wall-clock harness (`cargo bench -p repro-bench --bench compiler`);
//! the environment is offline, so no criterion.

use pulse_compiler::decompose::{synthesize_with_uses, DecomposeOptions, NativeGate};
use pulse_compiler::{optimize, route, to_basis, BasisKind, CompileMode, Compiler, CouplingMap};
use quant_algos::LineGraph;
use quant_device::{calibrate, DeviceModel};
use quant_math::seeded;
use quant_sim::gates;
use repro_bench::timing::bench;

fn qaoa_circuit() -> quant_circuit::Circuit {
    LineGraph::new(4).qaoa_circuit(&[(0.9, 0.4)])
}

fn main() {
    let circuit = qaoa_circuit();
    bench("optimize_pass_pipeline_qaoa4", 10, || {
        std::hint::black_box(optimize(std::hint::black_box(&circuit)));
    });
    bench("translate_standard_qaoa4", 10, || {
        std::hint::black_box(to_basis(
            std::hint::black_box(&circuit),
            BasisKind::Standard,
        ));
    });

    let device = DeviceModel::ideal(4);
    let mut rng = seeded(1);
    let cal = calibrate(&device, &mut rng);
    for (name, mode) in [
        ("compile_standard_qaoa4", CompileMode::Standard),
        ("compile_optimized_qaoa4", CompileMode::Optimized),
    ] {
        let compiler = Compiler::new(&device, &cal, mode);
        bench(name, 10, || {
            std::hint::black_box(compiler.compile(std::hint::black_box(&circuit)).unwrap());
        });
    }

    // Compilation cost vs circuit width (QAOA layers over a chain).
    for n in [2usize, 4, 6] {
        let device = DeviceModel::ideal(n);
        let mut rng = seeded(2);
        let cal = calibrate(&device, &mut rng);
        let circuit = LineGraph::new(n).qaoa_circuit(&[(0.9, 0.4)]);
        let compiler = Compiler::new(&device, &cal, CompileMode::Optimized);
        bench(&format!("compile_scaling/qaoa_{n}q_optimized"), 10, || {
            std::hint::black_box(compiler.compile(std::hint::black_box(&circuit)).unwrap());
        });
    }

    let map = CouplingMap::almaden_twenty();
    let mut routed = quant_circuit::Circuit::new(12);
    routed.h(0);
    for (a, b) in [(0u32, 11u32), (3, 8), (11, 2), (5, 9), (7, 0), (4, 10)] {
        routed.cnot(a, b);
    }
    bench("route_12q_on_almaden20", 10, || {
        std::hint::black_box(route(std::hint::black_box(&routed), &map).unwrap());
    });

    let opts = DecomposeOptions {
        restarts: 2,
        max_evals: 2000,
        ..Default::default()
    };
    bench("synthesize_cnot_from_cr90", 10, || {
        std::hint::black_box(synthesize_with_uses(
            std::hint::black_box(&gates::cnot()),
            NativeGate::Cr90,
            1,
            &opts,
        ));
    });
}
