//! Criterion benchmarks for the compiler itself: pass pipeline, basis
//! translation, full compilation, and the two-qubit decomposer.

use criterion::{criterion_group, criterion_main, Criterion};
use pulse_compiler::decompose::{synthesize_with_uses, DecomposeOptions, NativeGate};
use pulse_compiler::{optimize, to_basis, BasisKind, CompileMode, Compiler};
use quant_algos::LineGraph;
use quant_device::{calibrate, DeviceModel};
use quant_math::seeded;
use quant_sim::gates;

fn qaoa_circuit() -> quant_circuit::Circuit {
    LineGraph::new(4).qaoa_circuit(&[(0.9, 0.4)])
}

fn bench_passes(c: &mut Criterion) {
    let circuit = qaoa_circuit();
    c.bench_function("optimize_pass_pipeline_qaoa4", |b| {
        b.iter(|| optimize(std::hint::black_box(&circuit)))
    });
    c.bench_function("translate_standard_qaoa4", |b| {
        b.iter(|| to_basis(std::hint::black_box(&circuit), BasisKind::Standard))
    });
}

fn bench_full_compile(c: &mut Criterion) {
    let device = DeviceModel::ideal(4);
    let mut rng = seeded(1);
    let cal = calibrate(&device, &mut rng);
    let circuit = qaoa_circuit();
    for (name, mode) in [
        ("compile_standard_qaoa4", CompileMode::Standard),
        ("compile_optimized_qaoa4", CompileMode::Optimized),
    ] {
        let compiler = Compiler::new(&device, &cal, mode);
        c.bench_function(name, |b| {
            b.iter(|| compiler.compile(std::hint::black_box(&circuit)).unwrap())
        });
    }
}

fn bench_compile_scaling(c: &mut Criterion) {
    // Compilation cost vs circuit width (QAOA layers over a chain).
    let mut group = c.benchmark_group("compile_scaling");
    for n in [2usize, 4, 6] {
        let device = DeviceModel::ideal(n);
        let mut rng = seeded(2);
        let cal = calibrate(&device, &mut rng);
        let circuit = LineGraph::new(n).qaoa_circuit(&[(0.9, 0.4)]);
        let compiler = Compiler::new(&device, &cal, CompileMode::Optimized);
        group.bench_function(format!("qaoa_{n}q_optimized"), |b| {
            b.iter(|| compiler.compile(std::hint::black_box(&circuit)).unwrap())
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    use pulse_compiler::{route, CouplingMap};
    let map = CouplingMap::almaden_twenty();
    let mut circuit = quant_circuit::Circuit::new(12);
    circuit.h(0);
    for (a, b) in [(0u32, 11u32), (3, 8), (11, 2), (5, 9), (7, 0), (4, 10)] {
        circuit.cnot(a, b);
    }
    c.bench_function("route_12q_on_almaden20", |b| {
        b.iter(|| route(std::hint::black_box(&circuit), &map).unwrap())
    });
}

fn bench_decomposer(c: &mut Criterion) {
    let opts = DecomposeOptions {
        restarts: 2,
        max_evals: 2000,
        ..Default::default()
    };
    c.bench_function("synthesize_cnot_from_cr90", |b| {
        b.iter(|| {
            synthesize_with_uses(
                std::hint::black_box(&gates::cnot()),
                NativeGate::Cr90,
                1,
                &opts,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_passes, bench_full_compile, bench_compile_scaling, bench_routing, bench_decomposer
}
criterion_main!(benches);
