//! Criterion benchmarks for the simulation substrates: pulse integration,
//! density-matrix channels, and the noisy executor.

use criterion::{criterion_group, criterion_main, Criterion};
use pulse_compiler::{CompileMode, Compiler};
use quant_device::{calibrate, DeviceModel, PulseExecutor};
use quant_math::seeded;
use quant_pulse::Drag;
use quant_sim::{channels, gates, DensityMatrix, StateVector};

fn bench_pulse_integration(c: &mut Criterion) {
    let device = DeviceModel::ideal(1);
    let transmon = device.transmon_cal(0);
    let w = Drag {
        duration: 160,
        amp: 0.2,
        sigma: 40.0,
        beta: 2.0,
    }
    .waveform("w");
    c.bench_function("transmon_integrate_160_samples", |b| {
        b.iter(|| transmon.integrate_waveform(std::hint::black_box(&w)))
    });
}

fn bench_state_vector(c: &mut Criterion) {
    c.bench_function("statevector_ghz_10q", |b| {
        b.iter(|| {
            let mut psi = StateVector::zero_qubits(10);
            psi.apply_unitary(&gates::h(), &[0]);
            for q in 0..9 {
                psi.apply_unitary(&gates::cnot(), &[q, q + 1]);
            }
            psi.probabilities()
        })
    });
}

fn bench_density_matrix(c: &mut Criterion) {
    c.bench_function("density_matrix_channel_5q", |b| {
        b.iter(|| {
            let mut rho = DensityMatrix::zero_qubits(5);
            rho.apply_unitary(&gates::h(), &[0]);
            for q in 0..4 {
                rho.apply_unitary(&gates::cnot(), &[q, q + 1]);
                rho.apply_kraus(&channels::amplitude_damping(0.01), &[q]);
            }
            rho.probabilities()
        })
    });
}

fn bench_executor(c: &mut Criterion) {
    let device = DeviceModel::ideal(2);
    let mut rng = seeded(3);
    let cal = calibrate(&device, &mut rng);
    let mut circuit = quant_circuit::Circuit::new(2);
    circuit.h(0).cnot(0, 1);
    let compiled = Compiler::new(&device, &cal, CompileMode::Optimized)
        .compile(&circuit)
        .unwrap();
    let exec = PulseExecutor::new(&device);
    c.bench_function("executor_bell_pair_noisy", |b| {
        b.iter(|| {
            let mut rng = seeded(4);
            exec.run(std::hint::black_box(&compiled.program), &mut rng)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pulse_integration, bench_state_vector, bench_density_matrix, bench_executor
}
criterion_main!(benches);
