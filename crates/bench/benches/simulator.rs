//! Timing benchmarks for the simulation substrates: pulse integration,
//! density-matrix channels, and the noisy executor.
//!
//! Plain wall-clock harness (`cargo bench -p repro-bench --bench simulator`);
//! the environment is offline, so no criterion.

use pulse_compiler::{CompileMode, Compiler};
use quant_device::{calibrate, DeviceModel, PulseExecutor};
use quant_math::seeded;
use quant_pulse::Drag;
use quant_sim::{channels, gates, DensityMatrix, StateVector};
use repro_bench::timing::bench;

fn main() {
    let device = DeviceModel::ideal(1);
    let transmon = device.transmon_cal(0);
    let w = Drag {
        duration: 160,
        amp: 0.2,
        sigma: 40.0,
        beta: 2.0,
    }
    .waveform("w");
    bench("transmon_integrate_160_samples", 20, || {
        std::hint::black_box(transmon.integrate_waveform(std::hint::black_box(&w)));
    });

    bench("statevector_ghz_10q", 10, || {
        let mut psi = StateVector::zero_qubits(10);
        psi.apply_unitary(&gates::h(), &[0]);
        for q in 0..9 {
            psi.apply_unitary(&gates::cnot(), &[q, q + 1]);
        }
        std::hint::black_box(psi.probabilities());
    });

    bench("density_matrix_channel_5q", 10, || {
        let mut rho = DensityMatrix::zero_qubits(5);
        rho.apply_unitary(&gates::h(), &[0]);
        for q in 0..4 {
            rho.apply_unitary(&gates::cnot(), &[q, q + 1]);
            rho.apply_kraus(&channels::amplitude_damping(0.01), &[q]);
        }
        std::hint::black_box(rho.probabilities());
    });

    let device = DeviceModel::ideal(2);
    let mut rng = seeded(3);
    let cal = calibrate(&device, &mut rng);
    let mut circuit = quant_circuit::Circuit::new(2);
    circuit.h(0).cnot(0, 1);
    let compiled = Compiler::new(&device, &cal, CompileMode::Optimized)
        .compile(&circuit)
        .unwrap();
    let exec = PulseExecutor::new(&device);
    bench("executor_bell_pair_noisy", 10, || {
        let mut rng = seeded(4);
        std::hint::black_box(exec.run(std::hint::black_box(&compiled.program), &mut rng));
    });
}
