//! Facade crate for the OpenPulse-compilation reproduction workspace.
//!
//! Re-exports every member crate under a stable namespace so examples and
//! integration tests can depend on a single package:
//!
//! ```
//! use openpulse_repro::math::C64;
//! assert_eq!(C64::I * C64::I, C64::real(-1.0));
//! ```

pub use pulse_compiler as compiler;
pub use quant_algos as algorithms;
pub use quant_char as characterization;
pub use quant_circuit as circuit;
pub use quant_corpus as corpus;
pub use quant_device as device;
pub use quant_math as math;
pub use quant_pulse as pulse;
pub use quant_service as service;
pub use quant_sim as sim;
