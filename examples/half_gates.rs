//! Table 2's "half gate" economy, end to end on a frequency-tunable
//! backend: calibrate the iSWAP flux pulse, *damp it* to get √iSWAP, then
//! use the decomposer to show that CNOT and the ZZ interaction cost half
//! as much in √iSWAPs as in full iSWAPs — in pulse time, not just gate
//! counts.
//!
//! ```text
//! cargo run --release --example half_gates
//! ```

use openpulse_repro::compiler::decompose::{synthesize_with_uses, DecomposeOptions, NativeGate};
use openpulse_repro::device::tunable::{calibrate_xy, XyPair, XyParams};
use openpulse_repro::device::{TransmonParams, DT};
use openpulse_repro::pulse::Channel;
use openpulse_repro::sim::gates;

fn main() {
    // 1. A tunable-coupler pair; tune up the exchange pulses.
    let pair = XyPair::new(
        TransmonParams::almaden_like(),
        TransmonParams::almaden_like(),
        XyParams::tunable_like(),
    );
    let coupler = Channel::Control(0);
    let cal = calibrate_xy(&pair, coupler);
    println!("calibrated flux pulses:");
    println!(
        "  iSWAP : {} dt ({:.0} ns)",
        cal.iswap.duration,
        cal.iswap.duration as f64 * DT * 1e9
    );
    println!(
        "  √iSWAP: {} dt ({:.0} ns)  — the damped pulse\n",
        cal.sqrt_iswap.duration,
        cal.sqrt_iswap.duration as f64 * DT * 1e9
    );

    // Verify the damped pulse really is √iSWAP against the device physics.
    let u = pair.integrate(&cal.schedule(&cal.sqrt_iswap, coupler), coupler);
    println!(
        "damped pulse vs √iSWAP matrix: max deviation {:.4}\n",
        u.phase_invariant_diff(&gates::sqrt_iswap())
    );

    // 2. Decomposition economics (Table 2's last three columns).
    let opts = DecomposeOptions::default();
    println!(
        "{:<16} {:>14} {:>14} {:>16}",
        "operation", "iSWAP uses", "√iSWAP uses", "pulse-time ratio"
    );
    for (name, target) in [
        ("CNOT", gates::cnot()),
        ("ZZ(0.777)", gates::zz(0.777)),
        ("SWAP", gates::swap()),
    ] {
        let full = (1..=3)
            .find_map(|k| synthesize_with_uses(&target, NativeGate::ISwap, k, &opts))
            .expect("iSWAP synthesis");
        let half = (1..=6)
            .find_map(|k| synthesize_with_uses(&target, NativeGate::SqrtISwap, k, &opts))
            .expect("√iSWAP synthesis");
        let t_full = full.uses as u64 * cal.iswap.duration;
        let t_half = half.uses as u64 * cal.sqrt_iswap.duration;
        println!(
            "{:<16} {:>14} {:>14} {:>15.2}x",
            name,
            full.uses,
            half.uses,
            t_full as f64 / t_half as f64
        );
    }
    println!("\nTable 2's claim: the half gate halves data-movement (SWAP) cost and");
    println!("matches the paper's {{1, 1.5, 1}} √iSWAP column against iSWAP's {{2, 3, 2}}.");
}
