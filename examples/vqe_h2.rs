//! VQE for molecular hydrogen, end to end: classical optimization of the
//! UCC ansatz on the ideal simulator, then evaluation of the ground-state
//! energy on the noisy simulated backend under both compilation flows.
//!
//! ```text
//! cargo run --release --example vqe_h2
//! ```

use openpulse_repro::algorithms::{molecules, pauli::PauliSum, vqe};
use openpulse_repro::characterization::Mitigator;
use openpulse_repro::compiler::{CompileMode, Compiler};
use openpulse_repro::device::{calibrate, DeviceModel, PulseExecutor};
use openpulse_repro::math::seeded;

/// Measures ⟨H⟩ of the solved ansatz on the device under one compile mode.
fn measure_energy(
    device: &DeviceModel,
    calibration: &openpulse_repro::device::Calibration,
    hamiltonian: &PauliSum,
    theta: f64,
    mode: CompileMode,
    shots: usize,
    seed: u64,
) -> f64 {
    let mut rng = seeded(seed);
    let mitigator = Mitigator::from_calibration(
        &[device.readout(0).p1_given_0, device.readout(1).p1_given_0],
        &[device.readout(0).p0_given_1, device.readout(1).p0_given_1],
    );
    let identity: f64 = hamiltonian
        .terms()
        .iter()
        .filter(|t| t.support().is_empty())
        .map(|t| t.coeff)
        .sum();
    let mut energy = identity;
    for (term, circuit) in vqe::measurement_circuits(hamiltonian, theta) {
        let compiled = Compiler::new(device, calibration, mode)
            .compile(&circuit)
            .expect("compile");
        let exec = PulseExecutor::new(device);
        let out = exec.run(&compiled.program, &mut rng);
        let counts = out.sample_counts(&mut rng, shots);
        let total: u64 = counts.iter().sum();
        let probs: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        let mitigated = mitigator.mitigate(&probs);
        energy += term.expectation_from_distribution(&mitigated);
    }
    energy
}

fn main() {
    let m = molecules::h2();
    let exact = m.hamiltonian.ground_energy();
    let solved = vqe::solve(&m.hamiltonian);
    println!("H2 VQE (UCC ansatz, 2-qubit reduced Hamiltonian)");
    println!("  exact ground energy : {exact:+.6} Ha");
    println!(
        "  ideal VQE optimum   : {:+.6} Ha at θ = {:.4}\n",
        solved.energy, solved.theta
    );

    let mut rng = seeded(11);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let calibration = calibrate(&device, &mut rng);
    for mode in [CompileMode::Standard, CompileMode::Optimized] {
        let e = measure_energy(
            &device,
            &calibration,
            &m.hamiltonian,
            solved.theta,
            mode,
            8000,
            77,
        );
        println!(
            "  {mode:?} flow measured energy: {e:+.6} Ha  (error {:+.2} mHa)",
            1000.0 * (e - exact)
        );
    }
    println!("\nThe optimized flow's shorter, fewer-pulse ansatz circuit sits closer");
    println!("to the exact energy — the paper's Fig. 12 H2 benchmark in miniature.");
}
