//! QAOA-MAXCUT on a 5-vertex line graph: the workload where the paper's
//! ZZ-interaction optimization pays off most (its largest Fig. 12 gain).
//!
//! The program is written the "textbook" way — each cost edge as
//! CNOT·Rz·CNOT — and the optimized compiler's passes rediscover the ZZ
//! interactions automatically (write-once, target-all).
//!
//! ```text
//! cargo run --release --example qaoa_maxcut
//! ```

use openpulse_repro::algorithms::LineGraph;
use openpulse_repro::compiler::{CompileMode, Compiler};
use openpulse_repro::device::{calibrate, DeviceModel, PulseExecutor, DT};
use openpulse_repro::math::seeded;

fn main() {
    let g = LineGraph::new(5);
    let ((gamma, beta), ideal_cut) = g.solve_p1();
    println!("QAOA p=1 MAXCUT on the 5-vertex line graph");
    println!("  optimal (γ, β) = ({gamma:.4}, {beta:.4})");
    println!(
        "  ideal expected cut = {ideal_cut:.3} of max {}\n",
        g.max_cut()
    );

    let circuit = g.qaoa_circuit(&[(gamma, beta)]);
    println!(
        "textbook circuit: {} CNOTs, {} 1q gates",
        circuit.count_gate("cx"),
        circuit.len() - circuit.count_gate("cx")
    );

    let mut rng = seeded(23);
    let device = DeviceModel::almaden_like(5, &mut rng);
    let calibration = calibrate(&device, &mut rng);

    for mode in [CompileMode::Standard, CompileMode::Optimized] {
        let compiled = Compiler::new(&device, &calibration, mode)
            .compile(&circuit)
            .expect("compile");
        let exec = PulseExecutor::new(&device);
        let out = exec.run(&compiled.program, &mut rng);
        let counts = out.sample_counts(&mut rng, 8000);
        let total: u64 = counts.iter().sum();
        let probs: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        let cut = g.expected_cut(&probs);
        println!(
            "\n{mode:?} flow:\n  ZZ interactions detected: {}\n  schedule: {} pulses, {:.2} µs\n  measured expected cut: {cut:.3} (ideal {ideal_cut:.3})",
            compiled.assembly.count_gate("zz"),
            compiled.pulse_count(),
            compiled.duration() as f64 * DT * 1e6,
        );
    }
}
