//! Quickstart: compile a Bell-pair circuit through all four stages of the
//! paper's Figure 1 / Table 1 flow — program, assembly, basis gates, pulse
//! schedule — in both the standard and the pulse-optimized mode, then run
//! it on the simulated Almaden backend.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use openpulse_repro::circuit::Circuit;
use openpulse_repro::compiler::{CompileMode, Compiler};
use openpulse_repro::device::{calibrate, DeviceModel, PulseExecutor};
use openpulse_repro::math::seeded;

fn main() {
    // 1. A simulated 2-qubit Almaden-like device, freshly calibrated (the
    //    Rabi / DRAG / CR tune-ups run against the simulated physics).
    let mut rng = seeded(7);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let calibration = calibrate(&device, &mut rng);
    println!(
        "calibrated device: {} cmd_def entries ({:?})\n",
        calibration.cmd_def().len(),
        calibration.cmd_def().gate_names()
    );

    // 2. PROGRAM stage: hardware-agnostic user code.
    let mut bell = Circuit::new(2);
    bell.h(0).cnot(0, 1);
    println!("program:\n{bell}\n");

    for mode in [CompileMode::Standard, CompileMode::Optimized] {
        let compiled = Compiler::new(&device, &calibration, mode)
            .compile(&bell)
            .expect("compile");

        println!("==== {mode:?} flow ====");
        // 3. ASSEMBLY stage (after transpiler passes).
        println!("assembly:\n{}", compiled.assembly);
        // 4. BASIS GATES stage.
        println!("basis gates:\n{}", compiled.basis);
        // 5. PULSE SCHEDULE stage.
        println!(
            "pulse schedule: {} pulses, {} dt ({:.1} ns)",
            compiled.pulse_count(),
            compiled.duration(),
            compiled.duration() as f64 * openpulse_repro::device::DT * 1e9,
        );
        println!("{}", compiled.program.schedule.ascii_art(64));

        // Execute with the full noise model and print the distribution.
        let exec = PulseExecutor::new(&device);
        let out = exec.run(&compiled.program, &mut rng);
        let counts = out.sample_counts(&mut rng, 4000);
        println!("measured counts over 4000 shots: {counts:?}");
        println!("(ideal Bell pair: ~2000 each on |00⟩ and |11⟩, ~0 elsewhere)\n");
    }
}
