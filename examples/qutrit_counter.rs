//! The base-3 qutrit counter (paper §7): drive the |0⟩→|1⟩→|2⟩→|0⟩ cycle
//! with frequency-shifted pulses — something no single *qubit* can do —
//! and read the state back through simulated resonator IQ points and a
//! from-scratch linear discriminant.
//!
//! ```text
//! cargo run --release --example qutrit_counter
//! ```

use openpulse_repro::algorithms::{calibrate_qutrit, counter_schedule};
use openpulse_repro::characterization::Lda;
use openpulse_repro::device::{calibrate, readout, DeviceModel, PulseExecutor};
use openpulse_repro::math::seeded;

fn main() {
    let mut rng = seeded(42);
    let device = DeviceModel::almaden_like(1, &mut rng);
    let calibration = calibrate(&device, &mut rng);

    // Tune up the three transitions (f01, f12, f02/2).
    let pulses = calibrate_qutrit(&device, &calibration);
    println!("qutrit pulse calibration:");
    println!(
        "  x01: {} dt at f01;  x12: {} dt at f01{:+.1} MHz;  x02: {} dt at f01{:+.1} MHz",
        pulses.x01.duration(),
        pulses.x12.duration(),
        pulses.f12_offset / 1e6,
        pulses.x02.duration(),
        pulses.f02_offset / 1e6,
    );

    // Train the IQ discriminator on calibration shots.
    let mut pts = Vec::new();
    let mut lbl = Vec::new();
    for level in 0..3usize {
        for _ in 0..1000 {
            pts.push(readout::sample_iq(device.readout(0), level, &mut rng));
            lbl.push(level);
        }
    }
    let lda = Lda::train(&pts, &lbl, 3);
    println!(
        "  IQ discriminator accuracy: {:.1}%\n",
        100.0 * lda.accuracy(&pts, &lbl)
    );

    // Count!
    let exec = PulseExecutor::new(&device);
    println!(
        "{:>7} {:>7} {:>8} {:>8} {:>8}",
        "cycles", "hops", "P(|0⟩)", "P(|1⟩)", "P(|2⟩)"
    );
    for cycles in [1usize, 3, 10, 30, 60] {
        let schedule = counter_schedule(&pulses, cycles);
        let out = exec.run_qutrit(&schedule, &mut rng);
        println!(
            "{cycles:>7} {:>7} {:>7.1}% {:>7.1}% {:>7.1}%",
            3 * cycles,
            100.0 * out.populations[0],
            100.0 * out.populations[1],
            100.0 * out.populations[2],
        );
    }
    println!("\nA full cycle returns the qutrit to |0⟩; residual population in");
    println!("|1⟩/|2⟩ grows with cycle count — the paper's Fig. 11 right panel.");
}
