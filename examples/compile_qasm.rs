//! Compile an OpenQASM program through the full flow — the "write once,
//! target all" story: the input is textbook assembly text; the optimized
//! compiler rediscovers its ZZ interactions and lowers them to stretched
//! CR pulses without the author knowing any device physics.
//!
//! ```text
//! cargo run --release --example compile_qasm
//! ```

use openpulse_repro::circuit::qasm;
use openpulse_repro::compiler::{CompileMode, Compiler};
use openpulse_repro::device::{calibrate, DeviceModel, PulseExecutor, DT};
use openpulse_repro::math::seeded;

const PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
// prepare |+++>
h q[0];
h q[1];
h q[2];
// a textbook Ising layer: CNOT-Rz-CNOT per edge
cx q[0], q[1];
rz(pi/3) q[1];
cx q[0], q[1];
cx q[1], q[2];
rz(pi/3) q[2];
cx q[1], q[2];
// mixer
rx(pi/4) q[0];
rx(pi/4) q[1];
rx(pi/4) q[2];
"#;

fn main() {
    let circuit = qasm::parse(PROGRAM).expect("valid program");
    println!("parsed {} operations from QASM\n", circuit.len());

    let mut rng = seeded(2718);
    let device = DeviceModel::almaden_like(3, &mut rng);
    let calibration = calibrate(&device, &mut rng);

    for mode in [CompileMode::Standard, CompileMode::Optimized] {
        let compiled = Compiler::new(&device, &calibration, mode)
            .compile(&circuit)
            .expect("compile");
        println!("==== {mode:?} ====");
        println!(
            "assembly after passes ({} ops, {} ZZ detected):",
            compiled.assembly.len(),
            compiled.assembly.count_gate("zz")
        );
        println!("{}", qasm::print(&compiled.assembly));
        println!(
            "schedule: {} pulses, {} dt ({:.2} µs)\n",
            compiled.pulse_count(),
            compiled.duration(),
            compiled.duration() as f64 * DT * 1e6
        );
        let exec = PulseExecutor::new(&device);
        let out = exec.run(&compiled.program, &mut rng);
        let counts = out.sample_counts(&mut rng, 4000);
        println!("counts (4000 shots): {counts:?}\n");
    }
}
