//! Hamiltonian dynamics as a time series: Trotter-evolve the water
//! surrogate Hamiltonian and track ⟨Z₀⟩(t) — exactly, ideally Trotterized,
//! and on the noisy device under both compilation flows.
//!
//! This is the paper's "Hamiltonian Dynamics" benchmark class (§8.1) as a
//! physical observable rather than a single distribution snapshot: the
//! optimized flow tracks the exact curve longer because each Trotter step
//! costs one stretched CR block instead of two CNOTs per term.
//!
//! ```text
//! cargo run --release --example hamiltonian_dynamics
//! ```

use openpulse_repro::algorithms::{molecules, pauli::PauliString, trotter};
use openpulse_repro::compiler::{CompileMode, Compiler};
use openpulse_repro::device::{calibrate, DeviceModel, PulseExecutor};
use openpulse_repro::math::seeded;
use openpulse_repro::sim::StateVector;

fn main() {
    let m = molecules::water();
    let h = &m.hamiltonian;
    let z0 = PauliString::parse(1.0, "ZI");
    let steps_per_unit = 4;

    let mut rng = seeded(33);
    let device = DeviceModel::almaden_like(2, &mut rng);
    let calibration = calibrate(&device, &mut rng);

    println!("⟨Z0⟩ under exp(−iHt) for the H2O surrogate (4 Trotter steps / time unit)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "t", "exact", "trotter", "std flow", "opt flow"
    );

    for k in 0..=6 {
        let t = k as f64 * 0.5;
        // Start from the single-excitation state |01⟩ (q0 = 1): the
        // XX+YY hopping term moves the excitation between the qubits, so
        // ⟨Z0⟩ oscillates. (|00⟩ is an eigenstate — nothing would happen.)
        let exact = {
            let mut psi = StateVector::zero_qubits(2);
            psi.apply_unitary(&openpulse_repro::sim::gates::x(), &[0]);
            if t > 0.0 {
                psi.apply_unitary(&trotter::exact_propagator(h, t), &[0, 1]);
            }
            z0.expectation(&psi)
        };
        // Ideal Trotterized circuit.
        let steps = (steps_per_unit as f64 * t).ceil().max(1.0) as usize;
        let mut circuit = openpulse_repro::circuit::Circuit::new(2);
        circuit.x(0);
        circuit.extend(&trotter::trotter_circuit(h, t, steps));
        let ideal_trotter = z0.expectation(&circuit.simulate());
        // Noisy device, both flows.
        let mut measured = [0.0_f64; 2];
        for (i, mode) in [CompileMode::Standard, CompileMode::Optimized]
            .into_iter()
            .enumerate()
        {
            let compiled = Compiler::new(&device, &calibration, mode)
                .compile(&circuit)
                .expect("compile");
            let exec = PulseExecutor::new(&device);
            let out = exec.run(&compiled.program, &mut rng);
            // ⟨Z0⟩ from the (Z-basis) outcome distribution.
            measured[i] = z0.expectation_from_distribution(&out.probabilities);
        }
        println!(
            "{t:>6.2} {exact:>10.4} {ideal_trotter:>10.4} {:>10.4} {:>10.4}",
            measured[0], measured[1]
        );
    }
    println!("\nBoth flows decay towards ⟨Z0⟩ = 0 as circuits lengthen; the optimized");
    println!("flow stays closer to the Trotter curve at every time point.");
}
