//! Raw pulse-level access: build your *own* augmented basis gate, the way
//! the paper's §4 does — pull the calibrated Rx(180°) out of the backend's
//! cmd_def, scale its amplitude, and verify against the device physics
//! that you just made a high-fidelity Rx(θ) out of thin air.
//!
//! ```text
//! cargo run --release --example pulse_access
//! ```

use openpulse_repro::device::{calibrate, DeviceModel, DT};
use openpulse_repro::math::seeded;
use openpulse_repro::pulse::{Channel, Instruction, Schedule};
use openpulse_repro::sim::{euler_zxz, gates};

fn main() {
    let mut rng = seeded(99);
    let device = DeviceModel::almaden_like(1, &mut rng);
    let calibration = calibrate(&device, &mut rng);

    // 1. Inspect the backend-reported pulse library (cmd_def).
    println!("backend cmd_def entries:");
    for (key, schedule) in calibration.cmd_def().iter() {
        println!(
            "  {key:<14} {:>5} dt  {:>2} pulses",
            schedule.duration(),
            schedule.pulse_count()
        );
    }

    // 2. Extract the calibrated π pulse — the hardware primitive that the
    //    CNOT calibration provides "for free" (§2.3).
    let rx180 = calibration.qubit(0).rx180_waveform("rx180");
    println!(
        "\ncalibrated Rx(180°): {} samples, peak amplitude {:.4}, area {:.2} amp·dt",
        rx180.duration(),
        rx180.peak(),
        rx180.area().re
    );

    // 3. Make new gates by scaling the amplitude (§4.2's DirectRx).
    let transmon = device.transmon_cal(0);
    println!(
        "\n{:>8} {:>12} {:>14}",
        "θ (deg)", "duration", "angle achieved"
    );
    for target_deg in [30.0_f64, 45.0, 60.0, 90.0, 120.0, 150.0] {
        let scale = target_deg / 180.0;
        let scaled = rx180.scaled(scale);
        let mut s = Schedule::new("direct_rx");
        s.append(Instruction::Play {
            waveform: scaled,
            channel: Channel::Drive(0),
        });
        let u = transmon.integrate(&s, Channel::Drive(0)).qubit_block();
        let (_, theta, _) = euler_zxz(&u);
        println!(
            "{target_deg:>8.0} {:>9.1} ns {:>13.2}°",
            rx180.duration() as f64 * DT * 1e9,
            theta.to_degrees()
        );
    }

    // 4. Sanity: the full-amplitude pulse is the X gate.
    let mut s = Schedule::new("x");
    s.append(Instruction::Play {
        waveform: calibration.qubit(0).rx180_waveform("x"),
        channel: Channel::Drive(0),
    });
    let u = transmon.integrate(&s, Channel::Drive(0)).qubit_block();
    println!(
        "\nfull pulse vs X matrix: deviation {:.4} (phase-corrected paths in the \
         compiler bring this below 1e-2)",
        u.phase_invariant_diff(&gates::x())
    );
}
